"""Campaign layer: spec expansion, memoization, and resumability.

The load-bearing guarantees under test:

* a spec expands into the same ordered task list every time, so merged
  reports are independent of scheduling and of who populated the cache;
* the store key changes iff something that affects the measurement
  changes -- the sweep function's *own* source, its canonicalized
  parameters, or the backend -- and nothing else;
* a campaign killed mid-run resumes: completed tasks are cache hits,
  only the remainder executes, and the merged reports are byte-identical
  to an uninterrupted run's.
"""

import json
import sys
import textwrap

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    DryRunTarget,
    ExperimentGrid,
    InlineTarget,
    ProcessTarget,
    ResultStore,
    canonical_params,
    code_digest,
    expand,
    make_target,
    render_campaign_report,
    render_experiments_md,
)
from repro.obs import BenchStore
from repro.perf import SweepTask, SweepWorkerError
from repro.perf.sweep_executor import EXPERIMENT_SWEEPS


def tiny_spec(**kw):
    """Two real experiments, small enough to run inline in tests."""
    return CampaignSpec("tiny", (
        ExperimentGrid("E2", params={"sizes": (8,)}, seeds=(0, 1)),
        ExperimentGrid("E11", params={"sizes": (8,)}, seeds=(0,)),
    ), **kw)


def dry_spec():
    """A spec for DryRunTarget tests: grid x seeds = 6 tasks."""
    return CampaignSpec("dry", (
        ExperimentGrid("E2", grid={"sizes": [(8,), (10,)]}, seeds=(0, 1)),
        ExperimentGrid("E11", params={"sizes": (8,)}, seeds=(0, 1)),
    ))


def rows_as_tuples(report):
    return [(m.params, m.measured, m.bound, m.extra) for m in report.rows]


class TestSpecValidation:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment 'E99'"):
            ExperimentGrid("E99")

    def test_empty_backend_rejected_like_the_registry(self):
        """'' must fail spec validation with the registry's own error
        text, not fall through to 'use the default backend' later."""
        with pytest.raises(ValueError, match="unknown simulator backend ''"):
            ExperimentGrid("E2", backend="")
        with pytest.raises(ValueError, match="unknown simulator backend ''"):
            CampaignSpec("x", (ExperimentGrid("E2"),), backend="")

    def test_params_grid_overlap(self):
        with pytest.raises(ValueError, match="both 'params' and 'grid'"):
            ExperimentGrid("E2", params={"sizes": (8,)},
                           grid={"sizes": [(8,), (10,)]})

    def test_empty_grid_axis(self):
        with pytest.raises(ValueError, match="non-empty list"):
            ExperimentGrid("E2", grid={"sizes": []})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment-entry keys"):
            ExperimentGrid.from_dict({"experiment": "E2", "sizes": [8]})
        with pytest.raises(ValueError, match="unknown campaign keys"):
            CampaignSpec.from_dict({"name": "x", "experiments": [],
                                    "target": "inline"})

    def test_empty_campaign(self):
        with pytest.raises(ValueError, match="no experiments"):
            CampaignSpec("x", ())

    def test_load_rejects_bad_json(self, tmp_path):
        p = tmp_path / "spec.json"
        p.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            CampaignSpec.load(p)

    def test_round_trips_through_json(self, tmp_path):
        spec = tiny_spec(backend="fast")
        p = tmp_path / "spec.json"
        p.write_text(json.dumps(spec.as_dict()))
        assert CampaignSpec.load(p) == spec


class TestExpansion:
    def test_seed_splittable_fans_one_task_per_seed(self):
        tasks = expand(tiny_spec())
        assert [(t.experiment, t.seed) for t in tasks] == [
            ("E2", 0), ("E2", 1), ("E11", 0)]
        assert all(t.task.kwargs["seeds"] == (t.seed,) for t in tasks)

    def test_non_splittable_keeps_seeds_together(self):
        spec = CampaignSpec("x", (ExperimentGrid("E6", seeds=(0, 1, 2)),))
        (task,) = expand(spec)
        assert not EXPERIMENT_SWEEPS["E6"].seed_splittable
        assert task.seed is None
        assert task.task.kwargs["seeds"] == (0, 1, 2)

    def test_grid_crosses_in_sorted_axis_order(self):
        spec = CampaignSpec("x", (ExperimentGrid(
            "E6", grid={"sizes": [(8,), (10,)], "seeds": [(0,), (1,)]}),))
        combos = [t.task.kwargs for t in expand(spec)]
        # axes sorted ("seeds" < "sizes"), values in listed order
        assert combos == [
            {"seeds": (0,), "sizes": (8,)}, {"seeds": (0,), "sizes": (10,)},
            {"seeds": (1,), "sizes": (8,)}, {"seeds": (1,), "sizes": (10,)}]

    def test_entry_backend_overrides_campaign_backend(self):
        spec = CampaignSpec("x", (
            ExperimentGrid("E2", seeds=(0,)),
            ExperimentGrid("E3", seeds=(0,), backend="fast"),
        ), backend="reference")
        t2, t3 = expand(spec)
        assert t2.task.backend == "reference"
        assert t3.task.backend == "fast"

    def test_expansion_is_deterministic(self):
        assert expand(dry_spec()) == expand(dry_spec())


class TestResultStoreKeys:
    def test_key_is_stable_across_calls(self, tmp_path):
        store = ResultStore(tmp_path)
        t = SweepTask("repro.analysis.sweep:sweep_theorem11_apsp",
                      {"seeds": (0,), "sizes": (8,)})
        assert store.key_for(t) == store.key_for(t)

    def test_key_changes_with_params_seed_backend(self, tmp_path):
        store = ResultStore(tmp_path)

        def key(**kw):
            backend = kw.pop("backend", None)
            return store.key_for(SweepTask(
                "repro.analysis.sweep:sweep_theorem11_apsp", kw, backend))

        base = key(seeds=(0,), sizes=(8,))
        assert key(seeds=(1,), sizes=(8,)) != base
        assert key(seeds=(0,), sizes=(10,)) != base
        assert key(seeds=(0,), sizes=(8,), backend="fast") != base

    def test_defaulted_and_explicit_params_share_a_key(self, tmp_path):
        """Canonicalization binds the signature and applies defaults, so
        spelling a default out loud is not a cache miss."""
        params = canonical_params(
            "repro.analysis.sweep:sweep_theorem11_apsp", {"seeds": (0,)})
        explicit = canonical_params(
            "repro.analysis.sweep:sweep_theorem11_apsp",
            {"seeds": (0,), "sizes": params["sizes"]})
        assert params == explicit

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="sweep_theorem11_apsp"):
            canonical_params("repro.analysis.sweep:sweep_theorem11_apsp",
                             {"bogus": 1})


class TestResultStoreRoundTrip:
    def task(self):
        return SweepTask("repro.analysis.sweep:sweep_theorem11_apsp",
                         {"seeds": (0,), "sizes": (8,)})

    def test_put_get_round_trip(self, tmp_path):
        from repro.analysis import ExperimentReport

        rep = ExperimentReport("E2", "desc")
        rep.add({"seed": 0, "n": 8}, measured=7.0, bound=float("inf"),
                worst=float("nan"))
        store = ResultStore(tmp_path)
        store.put(self.task(), [rep])
        (back,) = store.get(self.task())
        assert back.experiment == "E2" and back.description == "desc"
        (m,) = back.rows
        assert m.params == {"seed": 0, "n": 8}
        assert list(m.params) == ["seed", "n"]   # column order preserved
        assert m.measured == 7.0 and m.bound == float("inf")

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        """Dry-run placeholders must never shadow real measurements."""
        from repro.analysis import ExperimentReport

        store = ResultStore(tmp_path)
        store.put(self.task(), [ExperimentReport("E2", "fake")],
                  kind="dry-run")
        assert store.get(self.task(), kind="real") is None
        assert not store.contains(self.task(), kind="real")
        assert store.contains(self.task(), kind="dry-run")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        from repro.analysis import ExperimentReport

        store = ResultStore(tmp_path)
        key = store.put(self.task(), [ExperimentReport("E2", "d")])
        store.path_for(key).write_text("{truncated")
        assert store.get(self.task()) is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert ResultStore(tmp_path).get(self.task()) is None


SWEEP_V1 = '''
from repro.analysis.records import ExperimentReport

def sweep_probe(seeds=(0,)):
    rep = ExperimentReport("E2", "probe")
    for s in seeds:
        rep.add({"seed": s}, measured=1.0)
    return rep

def sweep_other(seeds=(0,)):
    rep = ExperimentReport("E3", "other")
    rep.add({"seed": seeds[0]}, measured=2.0)
    return rep
'''

# sweep_probe's body changes; sweep_other is byte-identical.
SWEEP_V2 = SWEEP_V1.replace("measured=1.0", "measured=1.5")


class TestCodeDigestInvalidation:
    def test_editing_one_sweep_invalidates_only_that_sweep(
            self, tmp_path, monkeypatch):
        """The digest is the *function's* source, not the module's: an
        edit to sweep_probe changes sweep_probe's key and leaves
        sweep_other's key -- and therefore its cached tasks -- alone."""
        import importlib

        mod = tmp_path / "campaign_probe_mod.py"
        mod.write_text(textwrap.dedent(SWEEP_V1))
        monkeypatch.syspath_prepend(str(tmp_path))
        store = ResultStore(tmp_path / "store")
        probe = SweepTask("campaign_probe_mod:sweep_probe", {"seeds": (0,)})
        other = SweepTask("campaign_probe_mod:sweep_other", {"seeds": (0,)})
        try:
            probe_v1 = store.key_for(probe)
            other_v1 = store.key_for(other)

            mod.write_text(textwrap.dedent(SWEEP_V2))
            importlib.reload(sys.modules["campaign_probe_mod"])

            assert store.key_for(probe) != probe_v1   # edited: invalidated
            assert store.key_for(other) == other_v1   # untouched: cache hit
        finally:
            sys.modules.pop("campaign_probe_mod", None)

    def test_code_digest_matches_function_source(self, tmp_path, monkeypatch):
        mod = tmp_path / "campaign_digest_mod.py"
        mod.write_text(textwrap.dedent(SWEEP_V1))
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            d1 = code_digest("campaign_digest_mod:sweep_probe")
            assert d1 == code_digest("campaign_digest_mod:sweep_probe")
            assert d1 != code_digest("campaign_digest_mod:sweep_other")
        finally:
            sys.modules.pop("campaign_digest_mod", None)


class TestDryRunResumability:
    def test_killed_campaign_resumes_with_identical_reports(self, tmp_path):
        """Kill after 3 of 6 tasks; the restart sees 3 hits, runs only
        the remaining 3, and merges to exactly what an uninterrupted
        run produces."""
        spec = dry_spec()
        store = ResultStore(tmp_path / "store")

        with pytest.raises(SweepWorkerError, match="killed after 3"):
            CampaignRunner(spec, store, DryRunTarget(fail_after=3)).run()
        assert store.size() == 3                  # completed work survived

        resumed = CampaignRunner(spec, store, DryRunTarget()).run()
        assert resumed.hits == 3 and resumed.misses == 3

        fresh = CampaignRunner(spec, ResultStore(tmp_path / "fresh"),
                               DryRunTarget()).run()
        assert fresh.misses == 6
        assert [rows_as_tuples(r) for r in resumed.reports] == \
               [rows_as_tuples(r) for r in fresh.reports]

    def test_second_run_is_all_hits(self, tmp_path):
        spec = dry_spec()
        store = ResultStore(tmp_path)
        first = CampaignRunner(spec, store, DryRunTarget()).run()
        second = CampaignRunner(spec, store, DryRunTarget()).run()
        assert first.misses == 6 and first.hits == 0
        assert second.misses == 0 and second.all_hits
        assert [rows_as_tuples(r) for r in first.reports] == \
               [rows_as_tuples(r) for r in second.reports]

    def test_status_tracks_the_store(self, tmp_path):
        spec = dry_spec()
        store = ResultStore(tmp_path)
        runner = CampaignRunner(spec, store, DryRunTarget())
        assert runner.status().pending == 6
        runner.run()
        st = runner.status()
        assert st.done == st.total == 6
        assert st.per_experiment == {"E2": (4, 4), "E11": (2, 2)}
        assert "cached" in st.render()

    def test_collect_refuses_partial_campaigns(self, tmp_path):
        spec = dry_spec()
        store = ResultStore(tmp_path)
        runner = CampaignRunner(spec, store, DryRunTarget())
        with pytest.raises(ValueError, match="not in the store"):
            runner.collect()
        runner.run()
        assert runner.collect().all_hits


class TestRealCampaign:
    """Real sweeps, tiny sizes: the acceptance-criteria path."""

    def test_cached_rerun_is_bit_identical_to_sequential(self, tmp_path):
        """Campaign through the store (twice) vs the plain sequential
        jobs=1 executor: same BENCH bytes, and run 2 is 100% hits."""
        from repro.perf import SweepExecutor

        spec = tiny_spec()
        store = ResultStore(tmp_path / "store")
        first = CampaignRunner(spec, store, InlineTarget()).run()
        second = CampaignRunner(spec, store, InlineTarget()).run()
        assert first.misses == 3 and second.all_hits

        seq = SweepExecutor(jobs=1).run(
            [ct.task for ct in expand(spec)])

        bench = BenchStore(tmp_path)
        b1 = bench.save("c1", first.reports, created="pinned").read_bytes()
        b2 = bench.save("c2", second.reports, created="pinned").read_bytes()
        b3 = bench.save("c3", seq, created="pinned").read_bytes()
        assert b1.replace(b'"c1"', b'"X"') == b2.replace(b'"c2"', b'"X"') \
            == b3.replace(b'"c3"', b'"X"')

    def test_process_target_matches_inline(self, tmp_path):
        spec = tiny_spec()
        inline = CampaignRunner(spec, ResultStore(tmp_path / "a"),
                                InlineTarget()).run()
        procs = CampaignRunner(spec, ResultStore(tmp_path / "b"),
                               ProcessTarget(jobs=2)).run()
        assert [rows_as_tuples(r) for r in inline.reports] == \
               [rows_as_tuples(r) for r in procs.reports]


class TestTargets:
    def test_make_target_names(self):
        assert isinstance(make_target("inline"), InlineTarget)
        assert isinstance(make_target("dry-run"), DryRunTarget)
        proc = make_target("process", jobs=3)
        assert isinstance(proc, ProcessTarget) and proc.jobs == 3
        with pytest.raises(ValueError, match="unknown execution target"):
            make_target("cloud")

    def test_process_target_validates_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ProcessTarget(jobs=0)

    def test_dry_run_is_deterministic(self, tmp_path):
        tasks = expand(dry_spec())
        out1 = list(DryRunTarget().execute(tasks))
        out2 = list(DryRunTarget().execute(tasks))
        assert [(i, rows_as_tuples(r[0])) for i, r in out1] == \
               [(i, rows_as_tuples(r[0])) for i, r in out2]


class TestReportRendering:
    def test_campaign_report_renders_every_experiment(self, tmp_path):
        spec = dry_spec()
        runner = CampaignRunner(spec, ResultStore(tmp_path), DryRunTarget())
        text = render_campaign_report(runner.run())
        assert "# Campaign report: dry" in text
        assert "## E2" in text and "## E11" in text
        assert "| measured |" in text

    def test_experiments_md_contains_known_sections(self, tmp_path):
        spec = tiny_spec()
        runner = CampaignRunner(spec, ResultStore(tmp_path), InlineTarget())
        text = render_experiments_md(runner.run().reports, elapsed=1.0)
        assert text.startswith("# EXPERIMENTS")
        assert "## E2 -- Theorem I.1(ii)" in text
        assert "## E11 -- Table I" in text
