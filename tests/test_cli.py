"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.graphs import io as gio


def run_cli(*argv):
    out = io.StringIO()
    rc = main(list(argv), out=out)
    return rc, out.getvalue()


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    rc, _ = run_cli("gen", "-n", "10", "--seed", "3", "-o", str(path))
    assert rc == 0
    return str(path)


class TestGen:
    def test_gen_to_stdout(self):
        rc, out = run_cli("gen", "-n", "6", "--seed", "1")
        assert rc == 0
        g = gio.loads(out)
        assert g.n == 6

    def test_gen_families(self, tmp_path):
        for fam in ("random", "zero-cluster", "bounded-distance"):
            path = tmp_path / f"{fam}.txt"
            rc, _ = run_cli("gen", "--family", fam, "-n", "8",
                            "--seed", "2", "-o", str(path))
            assert rc == 0
            assert gio.load(path).is_comm_connected()

    def test_gen_deterministic(self):
        _, a = run_cli("gen", "-n", "8", "--seed", "5")
        _, b = run_cli("gen", "-n", "8", "--seed", "5")
        assert a == b


class TestInfo:
    def test_info_fields(self, graph_file):
        rc, out = run_cli("info", graph_file)
        assert rc == 0
        for field in ("nodes:", "edges:", "max weight", "Delta",
                      "zero-weight edges", "comm connected"):
            assert field in out


class TestAlgorithms:
    @pytest.mark.parametrize("method", ["pipelined", "blocker",
                                        "bellman-ford", "scaling", "auto"])
    def test_apsp_methods(self, graph_file, method):
        rc, out = run_cli("apsp", graph_file, "--method", method, "-q")
        assert rc == 0
        assert "rounds:" in out

    def test_apsp_prints_matrix(self, graph_file):
        rc, out = run_cli("apsp", graph_file, "--method", "pipelined")
        assert rc == 0
        assert out.count("\n") >= 10  # metrics + 10 rows

    def test_kssp(self, graph_file):
        rc, out = run_cli("kssp", graph_file, "--sources", "0,3", "-q")
        assert rc == 0
        assert "rounds:" in out

    def test_hkssp(self, graph_file):
        rc, out = run_cli("hkssp", graph_file, "--sources", "0",
                          "--hops", "2")
        assert rc == 0
        assert "gamma=" in out and "bound" in out

    def test_approx_with_verify(self, graph_file):
        rc, out = run_cli("approx", graph_file, "--eps", "1.0",
                          "--verify", "-q")
        assert rc == 0
        assert "worst measured ratio" in out


class TestBounds:
    def test_bounds_output(self):
        rc, out = run_cli("bounds", "-n", "64", "--delta", "50",
                          "--w-max", "8")
        assert rc == 0
        assert "Theorem I.1(ii) APSP" in out
        assert "optimal h" in out


class TestErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            run_cli("gen", "--family", "torus")


class TestBenchCommand:
    def test_bench_single_experiment(self):
        rc, out = run_cli("bench", "E13")
        assert rc == 0
        assert "E13a" in out and "E13b" in out
        assert "yes" in out

    def test_bench_unknown_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            run_cli("bench", "E99")

    def test_bench_case_insensitive(self):
        rc, out = run_cli("bench", "e4")
        assert rc == 0
        assert "E4" in out


class TestExplainCommand:
    def test_explain_renders_story(self, graph_file):
        rc, out = run_cli("explain", graph_file, "--source", "0",
                          "--node", "5")
        assert rc == 0
        assert "pair 0 -> 5" in out

    def test_explain_with_hop_bound(self, graph_file):
        rc, out = run_cli("explain", graph_file, "--source", "0",
                          "--node", "5", "--hops", "1")
        assert rc == 0


class TestUserErrorHandling:
    """Expected user errors exit 2 with one clean line (found during
    end-to-end verification -- they used to traceback)."""

    def test_missing_graph_file(self, capsys):
        rc = main(["apsp", "no_such_file.graph", "-q"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_sources_string(self, graph_file, capsys):
        rc = main(["kssp", graph_file, "--sources", "0,banana", "-q"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_graph(self, tmp_path, capsys):
        bad = tmp_path / "bad.graph"
        bad.write_text("n 3 directed\ne 0 9 4\n")
        rc = main(["info", str(bad)])
        assert rc == 2
        assert "out of range" in capsys.readouterr().err


class TestGenAdjustmentNote:
    def test_zero_cluster_note_when_n_adjusted(self, capsys):
        rc, out = run_cli("gen", "--family", "zero-cluster", "-n", "10",
                          "--clusters", "4")
        assert rc == 0
        assert "note:" in capsys.readouterr().err

    def test_no_note_when_n_divides(self, capsys):
        rc, out = run_cli("gen", "--family", "zero-cluster", "-n", "12",
                          "--clusters", "4")
        assert rc == 0
        assert "note:" not in capsys.readouterr().err


class TestFaults:
    def test_faults_smoke_resilient_run(self, graph_file):
        rc, out = run_cli("faults", graph_file, "--fault-seed", "2",
                          "--drop-rate", "0.1", "-q")
        assert rc == 0
        assert "fault plan: seed=2 drop=0.1" in out
        assert "resilient" in out
        assert "RESULT: correct" in out

    def test_faults_raw_run_reports_incorrect(self, graph_file):
        # Without the wrapper a seed that drops messages produces wrong
        # distances and a nonzero exit; scan a few seeds for one that
        # drops something (deterministic per seed, so this is stable).
        for seed in range(5):
            rc, out = run_cli("faults", graph_file, "--no-wrapper",
                              "--fault-seed", str(seed),
                              "--drop-rate", "0.3", "-q")
            if rc == 1:
                assert "RESULT: INCORRECT" in out
                break
        else:
            pytest.fail("no seed produced an incorrect raw run")

    def test_faults_crash_spec(self, graph_file):
        rc, out = run_cli("faults", graph_file, "--crash", "3@2:6", "-q")
        assert rc == 0
        assert "crash 3@2:6" in out

    def test_faults_bad_crash_spec_is_clean_error(self, graph_file, capsys):
        rc, _ = run_cli("faults", graph_file, "--crash", "nonsense")
        assert rc == 2
        assert "crash spec" in capsys.readouterr().err

    def test_faults_short_range(self, graph_file):
        rc, out = run_cli("faults", graph_file, "--algorithm",
                          "short-range", "--hops", "5",
                          "--drop-rate", "0.1", "-q")
        assert rc == 0
        assert "RESULT: correct" in out

    def test_bench_e18_registered(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["bench", "E18"])
        assert args.experiment == "E18"


class TestBackendFlag:
    """`--backend fast` on the instrumented commands: accepted, honored,
    identical output -- and backend errors stay one-line, exit 2."""

    def test_faults_backend_fast_matches_reference(self, graph_file):
        args = ("faults", graph_file, "--fault-seed", "2",
                "--drop-rate", "0.2", "--delay-rate", "0.2", "-q")
        rc_ref, out_ref = run_cli(*args, "--backend", "reference")
        rc_fast, out_fast = run_cli(*args, "--backend", "fast")
        assert rc_ref == 0
        assert (rc_fast, out_fast) == (rc_ref, out_ref)

    def test_faults_backend_fast_short_range(self, graph_file):
        rc, out = run_cli("faults", graph_file, "--algorithm",
                          "short-range", "--hops", "5", "--drop-rate",
                          "0.1", "-q", "--backend", "fast")
        assert rc == 0
        assert "RESULT: correct" in out

    def test_backend_unsupported_is_clean_error(self, graph_file, capsys,
                                                monkeypatch):
        """Nothing raises BackendUnsupported today; pin that if a future
        backend limitation does, the CLI reports it as a one-line error
        instead of a traceback."""
        from repro.perf import BackendUnsupported
        import repro.perf.backends as backends

        def refuse(*a, **k):
            raise BackendUnsupported(
                "backend 'fast' cannot honor hook 'quantum_oracle'")
        monkeypatch.setitem(backends.BACKENDS, "fast", refuse)
        rc, _ = run_cli("faults", graph_file, "--backend", "fast", "-q")
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot honor" in err

    def test_env_typo_is_clean_error_at_first_simulation(self, graph_file,
                                                         capsys, monkeypatch):
        import repro.perf.backends as backends
        monkeypatch.setenv("REPRO_BACKEND", "fasst")
        monkeypatch.setattr(backends, "_default_backend", None)
        rc, _ = run_cli("faults", graph_file, "-q")
        assert rc == 2
        err = capsys.readouterr().err
        assert "REPRO_BACKEND" in err and "fasst" in err


class TestServeCommand:
    def test_serve_bench_reports_speedup(self, graph_file):
        rc, out = run_cli("serve", "bench", graph_file,
                          "--queries", "800", "--seed", "7",
                          "--backend", "fast", "--jobs", "2")
        assert rc == 0
        assert "queries/sec" in out
        assert "speedup" in out and "hit rate" in out

    def test_serve_bench_seed_replays_same_workload(self, graph_file):
        rc1, out1 = run_cli("serve", "bench", graph_file,
                            "--queries", "300", "--seed", "4")
        rc2, out2 = run_cli("serve", "bench", graph_file,
                            "--queries", "300", "--seed", "4")
        assert rc1 == rc2 == 0
        line = [ln for ln in out1.splitlines() if "workload" in ln]
        assert line == [ln for ln in out2.splitlines() if "workload" in ln]
        assert "distinct pairs" in line[0]

    def test_serve_demo_refresh_reserves(self, graph_file):
        g = gio.load(graph_file)
        u, v, w = sorted(g.edges())[0]
        rc, out = run_cli("serve", "demo", graph_file,
                          "--query", "0,9", "--update", f"{u},{v},-")
        assert rc == 0
        assert "refresh: epoch 1" in out
        assert "RESULT: correct" in out

    def test_serve_demo_node_leave(self, graph_file):
        rc, out = run_cli("serve", "demo", graph_file, "--leave", "9")
        assert rc == 0
        assert "RESULT: correct" in out

    def test_serve_missing_file_exits_2(self, capsys):
        rc = main(["serve", "bench", "no_such_file.graph"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_update_spec_exits_2(self, graph_file, capsys):
        rc = main(["serve", "demo", graph_file, "--update", "0-1-2"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_query_target_exits_2(self, graph_file, capsys):
        rc = main(["serve", "demo", graph_file, "--query", "0,99"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_workload_params_exit_2(self, graph_file, capsys):
        rc = main(["serve", "bench", graph_file, "--queries", "-5"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_shards_exits_2(self, graph_file, capsys):
        rc = main(["serve", "bench", graph_file, "--shards", "99"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCampaignCommand:
    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "clitest",
            "experiments": [
                {"experiment": "E2", "params": {"sizes": [8]},
                 "seeds": [0, 1]},
            ],
        }))
        return str(path)

    def test_run_then_rerun_is_all_hits(self, spec_file, tmp_path):
        store = str(tmp_path / "store")
        rc, out = run_cli("campaign", "run", "--spec", spec_file,
                          "--store", store, "--target", "inline")
        assert rc == 0
        assert "misses: 2" in out
        rc, out = run_cli("campaign", "run", "--spec", spec_file,
                          "--store", store, "--target", "inline")
        assert rc == 0
        assert "misses: 0" in out and "cache hits: 100%" in out

    def test_status_before_and_after(self, spec_file, tmp_path):
        store = str(tmp_path / "store")
        rc, out = run_cli("campaign", "status", "--spec", spec_file,
                          "--store", store)
        assert rc == 0 and "0/2 task(s) cached, 2 pending" in out
        run_cli("campaign", "run", "--spec", spec_file, "--store", store)
        rc, out = run_cli("campaign", "status", "--spec", spec_file,
                          "--store", store)
        assert rc == 0 and "2/2 task(s) cached, 0 pending" in out

    def test_report_requires_a_complete_run(self, spec_file, tmp_path,
                                            capsys):
        store = str(tmp_path / "store")
        rc, out = run_cli("campaign", "report", "--spec", spec_file,
                          "--store", store)
        assert rc == 2
        assert "run 'campaign run' first" in capsys.readouterr().err
        run_cli("campaign", "run", "--spec", spec_file, "--store", store)
        rc, out = run_cli("campaign", "report", "--spec", spec_file,
                          "--store", store)
        assert rc == 0
        assert "# Campaign report: clitest" in out and "## E2" in out

    def test_report_files_identical_across_cached_runs(
            self, spec_file, tmp_path):
        store = str(tmp_path / "store")
        r1, r2 = tmp_path / "r1.md", tmp_path / "r2.md"
        rc, _ = run_cli("campaign", "run", "--spec", spec_file,
                        "--store", store, "--report", str(r1))
        assert rc == 0
        rc, _ = run_cli("campaign", "run", "--spec", spec_file,
                        "--store", store, "--report", str(r2))
        assert rc == 0
        assert r1.read_bytes() == r2.read_bytes()

    def test_dry_run_target_never_pollutes_real_cache(
            self, spec_file, tmp_path):
        store = str(tmp_path / "store")
        rc, _ = run_cli("campaign", "run", "--spec", spec_file,
                        "--store", store, "--target", "dry-run")
        assert rc == 0
        rc, out = run_cli("campaign", "status", "--spec", spec_file,
                          "--store", store)  # default target: real kind
        assert rc == 0 and "0/2 task(s) cached" in out

    def test_bad_spec_is_a_user_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "experiments": [
            {"experiment": "E2", "backend": ""}]}))
        rc, out = run_cli("campaign", "run", "--spec", str(bad),
                          "--store", str(tmp_path / "s"))
        assert rc == 2
        assert "unknown simulator backend ''" in capsys.readouterr().err

    def test_committed_smoke_spec_loads(self):
        from pathlib import Path

        from repro.campaign import CampaignSpec, expand
        spec = CampaignSpec.load(
            Path(__file__).parent.parent / "benchmarks" / "campaigns"
            / "smoke.json")
        assert spec.name == "ci-smoke"
        assert len(expand(spec)) == 3
