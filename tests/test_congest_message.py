"""Unit tests for CONGEST message size accounting."""

import pytest

from repro.congest import Envelope, payload_words


class TestPayloadWords:
    def test_scalars_are_one_word(self):
        assert payload_words(5) == 1
        assert payload_words(0) == 1
        assert payload_words(-3) == 1
        assert payload_words(3.5) == 1
        assert payload_words(True) == 1
        assert payload_words(None) == 1
        assert payload_words("tag") == 1

    def test_tuple_sums_fields(self):
        assert payload_words((1, 2, 3)) == 3
        assert payload_words((1, (2, 3), 4)) == 4
        assert payload_words(()) == 0

    def test_list_sums_fields(self):
        assert payload_words([1, 2]) == 2

    def test_dict_counts_keys_and_values(self):
        assert payload_words({"d": 3, "l": 4}) == 4

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            payload_words(object())

    def test_algorithm1_message_fits_default_budget(self):
        # (d, l, x, flag, nu): the Algorithm 1 payload
        assert payload_words((17, 3, 9, True, 2)) == 5 <= 8


class TestEnvelope:
    def test_make_caches_word_count(self):
        env = Envelope.make(0, 1, 7, (4, 2, 0, False, 1))
        assert env.words == 5
        assert env.src == 0 and env.dst == 1 and env.round == 7

    def test_envelope_is_frozen(self):
        env = Envelope.make(0, 1, 1, (1,))
        with pytest.raises(AttributeError):
            env.src = 2
