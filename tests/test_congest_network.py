"""Tests of the synchronous round simulator: delivery timing, model
constraint enforcement, quiescence, fast-forward correctness."""

from typing import List, Optional

import pytest

from repro.congest import (
    CongestionError,
    MessageSizeError,
    Network,
    NodeContext,
    Program,
    RoundLimitExceeded,
)
from repro.graphs import WeightedDigraph, path_graph


def line(n: int) -> WeightedDigraph:
    return path_graph(n, w=1)


class Pinger(Program):
    """Node 0 sends 'ping' in round 1; everyone records receipt rounds."""

    def __init__(self, v: int) -> None:
        self.v = v
        self.received_at: List[int] = []
        self._todo = (v == 0)

    def on_send(self, ctx: NodeContext, r: int) -> None:
        if self._todo:
            self._todo = False
            ctx.broadcast("ping")

    def on_receive(self, ctx, r, inbox) -> None:
        self.received_at.extend(r for _ in inbox)

    def next_active_round(self, ctx, r) -> Optional[int]:
        return 1 if self._todo else None

    def output(self, ctx):
        return self.received_at


class TestDeliveryTiming:
    def test_send_in_round_r_received_in_round_r(self):
        net = Network(line(3), Pinger)
        net.run(max_rounds=10)
        assert net.output_of(1) == [1]   # neighbour hears it in round 1
        assert net.output_of(2) == []    # non-neighbour never does

    def test_metrics_count_rounds_and_messages(self):
        net = Network(line(3), Pinger)
        m = net.run(max_rounds=10)
        assert m.rounds == 1
        assert m.messages == 1
        assert m.max_channel_congestion == 1


class Relay(Program):
    """Forward any received message next round; node 0 seeds in round 1."""

    def __init__(self, v: int) -> None:
        self.v = v
        self._send_at: Optional[int] = 1 if v == 0 else None
        self.heard: Optional[int] = 1 if v == 0 else None

    def on_send(self, ctx, r):
        if self._send_at == r:
            self._send_at = None
            ctx.send_many([u for u, _ in ctx.out_edges if u > self.v], "tok")

    def on_receive(self, ctx, r, inbox):
        if self.heard is None:
            self.heard = r
            self._send_at = r + 1

    def next_active_round(self, ctx, r):
        return self._send_at

    def output(self, ctx):
        return self.heard


class TestQuiescenceAndFastForward:
    def test_relay_chain_rounds(self):
        n = 6
        net = Network(line(n), Relay)
        m = net.run(max_rounds=20)
        # token crosses one hop per round
        assert [net.output_of(v) for v in range(n)] == [1, 1, 2, 3, 4, 5]
        assert m.rounds == n - 1

    def test_quiescence_no_messages_no_schedules(self):
        net = Network(line(4), Relay)
        m = net.run(max_rounds=100)
        # re-running an already-quiescent network is a no-op
        m2 = net.run(max_rounds=100)
        assert m2.rounds == m.rounds


class SlowTicker(Program):
    """Node 0 sends at rounds 10 and 20 only -- exercises fast-forward."""

    def __init__(self, v: int) -> None:
        self.v = v
        self.schedule = [10, 20] if v == 0 else []
        self.received: List[int] = []

    def on_send(self, ctx, r):
        if self.schedule and self.schedule[0] == r:
            self.schedule.pop(0)
            ctx.broadcast("tick")

    def on_receive(self, ctx, r, inbox):
        self.received.append(r)

    def next_active_round(self, ctx, r):
        return self.schedule[0] if self.schedule else None

    def output(self, ctx):
        return self.received


class TestFastForward:
    def test_skipped_rounds_still_counted(self):
        net = Network(line(2), SlowTicker)
        m = net.run(max_rounds=50)
        assert net.output_of(1) == [10, 20]
        assert m.rounds == 20
        assert m.skipped_rounds == (9) + (9)  # 1..9 and 11..19 skipped
        assert m.active_rounds == 2


class Flooder(Program):
    """Violates CONGEST: two messages on one channel in one round."""

    def __init__(self, v):
        self.v = v
        self._todo = (v == 0)

    def on_send(self, ctx, r):
        if self._todo:
            self._todo = False
            ctx.send(1, "a")
            ctx.send(1, "b")

    def next_active_round(self, ctx, r):
        return 1 if self._todo else None


class BigTalker(Program):
    def __init__(self, v):
        self._todo = (v == 0)

    def on_send(self, ctx, r):
        if self._todo:
            self._todo = False
            ctx.send(1, tuple(range(100)))

    def next_active_round(self, ctx, r):
        return 1 if self._todo else None


class Chatterbox(Program):
    """Never quiesces."""

    def on_send(self, ctx, r):
        ctx.broadcast("hi")

    def next_active_round(self, ctx, r):
        return r + 1


class TestConstraintEnforcement:
    def test_channel_capacity_violation_raises(self):
        net = Network(line(2), Flooder)
        with pytest.raises(CongestionError):
            net.run(max_rounds=5)

    def test_channel_capacity_configurable(self):
        net = Network(line(2), Flooder, channel_capacity=2)
        net.run(max_rounds=5)  # allowed now

    def test_message_size_violation_raises(self):
        net = Network(line(2), BigTalker)
        with pytest.raises(MessageSizeError):
            net.run(max_rounds=5)

    def test_round_limit_raises(self):
        net = Network(line(3), lambda v: Chatterbox())
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=7)

    def test_send_outside_send_phase_rejected(self):
        class Sneaky(Program):
            def on_receive(self, ctx, r, inbox):
                ctx.send(0, "late")

            def on_send(self, ctx, r):
                if r == 1:
                    ctx.broadcast("x")

            def next_active_round(self, ctx, r):
                return 1 if r < 1 else None

        net = Network(line(2), lambda v: Sneaky())
        with pytest.raises(RuntimeError, match="on_send"):
            net.run(max_rounds=5)


class TestContextTopology:
    def test_weight_in_and_neighbors(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 5), (1, 2, 0), (2, 0, 7)])
        net = Network(g, lambda v: Program())
        ctx1 = net.contexts[1]
        assert ctx1.weight_in(0) == 5
        assert ctx1.weight_in(2) is None
        assert set(ctx1.comm_neighbors) == {0, 2}
        assert ctx1.out_edges == ((2, 0),)


class TestLocality:
    def test_send_to_non_neighbor_rejected(self):
        class Teleporter(Program):
            def on_send(self, ctx, r):
                if ctx.node == 0:
                    ctx.send(2, "hi")  # 0 and 2 are not adjacent on a path

            def next_active_round(self, ctx, r):
                return 1 if r < 1 else None

        net = Network(line(3), lambda v: Teleporter())
        with pytest.raises(ValueError, match="no channel"):
            net.run(max_rounds=3)

    def test_send_many_to_non_neighbor_rejected(self):
        class Spammer(Program):
            def on_send(self, ctx, r):
                if ctx.node == 0:
                    ctx.send_many([1, 2], "hi")

            def next_active_round(self, ctx, r):
                return 1 if r < 1 else None

        net = Network(line(3), lambda v: Spammer())
        with pytest.raises(ValueError, match="no channel"):
            net.run(max_rounds=3)


class TestConstructorValidation:
    """Network rejects unusable parameters with actionable messages."""

    def test_zero_word_budget_rejected(self):
        with pytest.raises(ValueError, match="max_message_words"):
            Network(line(3), Relay, max_message_words=0)

    def test_zero_channel_capacity_rejected(self):
        with pytest.raises(ValueError, match="channel_capacity"):
            Network(line(3), Relay, channel_capacity=0)

    def test_nodeless_graph_rejected(self):
        class NoNodes:
            n = 0
        with pytest.raises(ValueError, match="graph.n >= 1"):
            Network(NoNodes(), Relay)


class TestRunResumption:
    """run() may be re-entered: execution resumes from the last
    processed round without double-starting programs or double-counting
    metrics (documented on Network.run)."""

    def test_interrupted_run_resumes_to_same_result(self):
        n = 6
        net = Network(line(n), Relay)
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=2)  # token is only 2 hops in
        net.run(max_rounds=20)     # absolute budget; resumes at round 3
        fresh = Network(line(n), Relay)
        fm = fresh.run(max_rounds=20)
        assert [net.output_of(v) for v in range(n)] == \
               [fresh.output_of(v) for v in range(n)]
        assert (net.metrics.rounds, net.metrics.messages,
                net.metrics.active_rounds) == \
               (fm.rounds, fm.messages, fm.active_rounds)

    def test_programs_started_exactly_once(self):
        starts = []

        class CountingPinger(Pinger):
            def on_start(self, ctx):
                starts.append(ctx.node)

        net = Network(line(3), CountingPinger)
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=0)
        net.run(max_rounds=10)
        net.run(max_rounds=10)
        assert sorted(starts) == [0, 1, 2]
