"""Tests for BFS tree construction, pipelined broadcast, convergecast."""

import random

from repro.congest import (
    broadcast_single,
    build_bfs_tree,
    convergecast_max,
    convergecast_sum,
    pipelined_broadcast,
)
from repro.graphs import (
    WeightedDigraph,
    eccentricity_bound,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)


class TestBFSTree:
    def test_path_graph_depths(self):
        g = path_graph(5)
        tree = build_bfs_tree(g, 0)
        assert tree.depths == [0, 1, 2, 3, 4]
        assert tree.parents == [None, 0, 1, 2, 3]
        assert tree.height == 4
        # the deepest node still announces once after adopting its depth
        assert tree.metrics.rounds == 5

    def test_star_graph(self):
        g = star_graph(6)
        tree = build_bfs_tree(g, 0)
        assert tree.depths == [0, 1, 1, 1, 1, 1]
        assert tree.children[0] == [1, 2, 3, 4, 5]

    def test_depths_match_bfs_on_random_graphs(self):
        for seed in range(10):
            g = random_graph(random.Random(seed).randint(3, 12),
                             p=0.3, w_max=3, seed=seed)
            root = seed % g.n
            tree = build_bfs_tree(g, root)
            # BFS oracle over comm graph
            depth = {root: 0}
            frontier = [root]
            while frontier:
                nxt = []
                for u in frontier:
                    for v in g.comm_neighbors(u):
                        if v not in depth:
                            depth[v] = depth[u] + 1
                            nxt.append(v)
                frontier = nxt
            for v in range(g.n):
                assert tree.depths[v] == depth.get(v)

    def test_rounds_at_most_diameter_plus_one(self):
        for seed in range(5):
            g = random_graph(10, p=0.3, w_max=2, seed=seed)
            tree = build_bfs_tree(g, 0)
            assert tree.metrics.rounds <= eccentricity_bound(g) + 1


class TestPipelinedBroadcast:
    def test_all_nodes_receive_in_order(self):
        g = path_graph(6)
        tree = build_bfs_tree(g, 0)
        values = [("v", i) for i in range(7)]
        received, m = pipelined_broadcast(g, tree, values)
        for v in range(6):
            assert received[v] == values
        # k values over height-5 tree: k + height rounds
        assert m.rounds <= len(values) + tree.height

    def test_empty_values(self):
        g = path_graph(3)
        tree = build_bfs_tree(g, 0)
        received, m = pipelined_broadcast(g, tree, [])
        assert received == [[], [], []]
        assert m.rounds == 0

    def test_single_broadcast(self):
        g = grid_graph(3, 3, w_max=1)
        tree = build_bfs_tree(g, 4)
        vals, m = broadcast_single(g, tree, ("id", 42))
        assert all(v == ("id", 42) for v in vals)

    def test_pipelining_beats_sequential(self):
        # k values down a deep path: pipelined k+D << sequential k*D
        g = path_graph(10)
        tree = build_bfs_tree(g, 0)
        k = 8
        _, m = pipelined_broadcast(g, tree, list(range(k)))
        assert m.rounds <= k + tree.height
        assert m.rounds < k * tree.height


class TestConvergecast:
    def test_sum_over_path(self):
        g = path_graph(5)
        tree = build_bfs_tree(g, 0)
        total, m = convergecast_sum(g, tree, [1, 2, 3, 4, 5])
        assert total == 15
        assert m.rounds <= tree.height + 1

    def test_max_with_argmax_tiebreak(self):
        g = star_graph(5)
        tree = build_bfs_tree(g, 0)
        locals_ = [(3, -0), (7, -1), (7, -2), (1, -3), (0, -4)]
        (best, neg_v), _ = convergecast_max(g, tree, locals_)
        assert best == 7 and -neg_v == 1  # ties break to smaller id

    def test_sum_single_node(self):
        g = WeightedDigraph(1)
        tree = build_bfs_tree(g, 0)
        total, m = convergecast_sum(g, tree, [9])
        assert total == 9
        assert m.rounds == 0
