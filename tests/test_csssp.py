"""Tests for CSSSP construction (Section III-A, Lemma III.4)."""

import random

import pytest

from repro.core import build_csssp, run_hk_ssp
from repro.graphs import (
    FIGURE1_HOP_BOUND,
    WeightedDigraph,
    dijkstra_min_hops,
    figure1_graph,
    random_graph,
    zero_cluster_graph,
)

INF = float("inf")


class TestFigure1Repair:
    def test_plain_pointers_violate_height(self):
        """With h = 3 the plain parent pointers at t lead through the
        3-hop path; truncating naively at h = 2 would strand t -- the
        CSSSP construction instead runs with 2h and keeps t out of T_s,
        exactly as the Figure 1 caption prescribes."""
        g = figure1_graph()
        h = FIGURE1_HOP_BOUND
        coll = build_csssp(g, [0], h)
        coll.check_consistency()
        # t=3 has only 3-hop shortest paths: not in the 2-hop tree
        assert not coll.contains(0, 3)
        # a=1 is in the tree at depth 2 via b
        assert coll.contains(0, 1)
        assert coll.depth[0][1] == 2
        assert coll.parent[0][1] == 2


class TestDefinitionIII3:
    @pytest.mark.parametrize("seed", range(15))
    def test_consistency_random(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 12)
        g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.35, seed=seed)
        h = rng.randint(1, max(1, n // 2))
        srcs = rng.sample(range(n), rng.randint(1, n))
        coll = build_csssp(g, srcs, h)
        coll.check_consistency()

    def test_coverage_exact(self):
        g = zero_cluster_graph(3, 3, seed=1)
        h = 3
        coll = build_csssp(g, list(range(g.n)), h)
        for x in coll.sources:
            d_true, l_true, _ = dijkstra_min_hops(g, x)
            for v in range(g.n):
                if l_true[v] <= h:
                    assert coll.contains(x, v)
                    assert coll.dist[x][v] == d_true[v]
                    assert coll.depth[x][v] == l_true[v]

    def test_tree_paths_have_consistent_weights(self):
        g = random_graph(10, p=0.35, w_max=5, zero_fraction=0.4, seed=7)
        coll = build_csssp(g, [0, 3, 6], 3)
        for x in coll.sources:
            for v in coll.tree_nodes(x):
                path = coll.tree_path(x, v)
                w = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
                assert w == coll.dist[x][v]
                assert len(path) - 1 == coll.depth[x][v]


class TestTreeStructures:
    @pytest.mark.parametrize("seed", range(10))
    def test_lemma_iii7_in_tree(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        g = random_graph(n, p=0.35, w_max=5, zero_fraction=0.3, seed=seed)
        coll = build_csssp(g, rng.sample(range(n), max(1, n // 2)),
                           rng.randint(1, n // 2 + 1))
        for c in range(n):
            nxt = coll.in_tree_to(c)  # raises on violation
            # following pointers from any node reaches c
            for start in nxt:
                cur, steps = start, 0
                while cur != c:
                    cur = nxt[cur]
                    steps += 1
                    assert steps <= n

    @pytest.mark.parametrize("seed", range(10))
    def test_lemma_iii6_out_tree(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        g = random_graph(n, p=0.35, w_max=5, zero_fraction=0.3, seed=seed)
        coll = build_csssp(g, rng.sample(range(n), max(1, n // 2)),
                           rng.randint(1, n // 2 + 1))
        for c in range(n):
            pred = coll.out_tree_from(c)  # raises on violation
            for start in pred:
                cur, steps = start, 0
                while cur != c:
                    cur = pred[cur]
                    steps += 1
                    assert steps <= n

    def test_children_inverse_of_parent(self):
        g = random_graph(9, p=0.35, w_max=4, zero_fraction=0.3, seed=3)
        coll = build_csssp(g, [0, 4], 3)
        for x in coll.sources:
            for v in coll.tree_nodes(x):
                for ch in coll.children(x, v):
                    assert coll.parent[x][ch] == v

    def test_leaves_at_depth_h(self):
        g = random_graph(9, p=0.35, w_max=4, zero_fraction=0.3, seed=3)
        h = 2
        coll = build_csssp(g, [0], h)
        for leaf in coll.leaves_at_depth_h(0):
            assert coll.depth[0][leaf] == h


class TestConstructionCost:
    def test_metrics_are_the_2h_run(self):
        g = random_graph(8, p=0.35, w_max=4, zero_fraction=0.3, seed=2)
        coll = build_csssp(g, [0, 2], 2)
        direct = run_hk_ssp(g, [0, 2], 4)
        assert coll.metrics.rounds == direct.metrics.rounds

    def test_bad_h_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            build_csssp(g, [0], 0)
