"""Determinism: identical inputs give bit-identical executions.

The simulator, the algorithms, and the seeded generators are all
deterministic; any nondeterminism (set iteration, dict ordering, float
context) would make round counts irreproducible and EXPERIMENTS.md
unstable.  Two independent runs must agree on everything measurable.
"""

import pytest

from repro.perf.backends import BACKENDS

#: Every registered backend except the reference itself: each must
#: reproduce the reference digests bit for bit.  Derived from the
#: registry so a new backend is covered the moment it is registered.
ALT_BACKENDS = sorted(b for b in BACKENDS if b != "reference")

from repro.core import (
    run_approx_apsp,
    run_apsp,
    run_apsp_blocker,
    run_hk_ssp,
    run_scaling_apsp,
    run_short_range,
)
from repro.graphs import random_graph


def snapshots(res):
    m = res.metrics
    return (m.rounds, m.messages, m.words, dict(m.channel_messages),
            dict(m.node_sends))


@pytest.mark.parametrize("runner,kwargs", [
    (run_apsp, {}),
    (run_apsp_blocker, {"h": 3}),
    (run_scaling_apsp, {}),
    (lambda g: run_hk_ssp(g, [0, 3, 7], 4), {}),
    (lambda g: run_short_range(g, 2, 5), {}),
    (lambda g: run_approx_apsp(g, 1.0), {}),
])
def test_two_runs_identical(runner, kwargs):
    g1 = random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=21)
    g2 = random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=21)
    a = runner(g1, **kwargs)
    b = runner(g2, **kwargs)
    assert snapshots(a) == snapshots(b)
    assert a.dist == b.dist


def fault_digest(backend="reference"):
    """One canonical fault-injected resilient run, reduced to a digest.

    Everything measurable goes in: outputs, metrics, per-channel counts,
    fault statistics, wrapper overhead.  Any hidden dependence on hash
    ordering or process state changes the digest.
    """
    import hashlib

    from repro.core.bellman_ford import run_bellman_ford
    from repro.faults import FaultPlan

    g = random_graph(12, p=0.35, w_max=8, seed=7)
    plan = FaultPlan(seed=3, drop_rate=0.15, duplicate_rate=0.1,
                     delay_rate=0.1, corrupt_rate=0.05, max_delay=3)
    res = run_bellman_ford(g, 0, fault_plan=plan, resilient=True,
                           backend=backend)
    m = res.metrics
    blob = repr((res.dist, res.parent, m.rounds, m.messages, m.words,
                 sorted(m.channel_messages.items()),
                 sorted(m.node_sends.items()),
                 m.retransmissions, m.ack_messages,
                 sorted(m.faults.items())))
    return hashlib.sha256(blob.encode()).hexdigest()


def test_fault_injected_runs_identical():
    """Same graph + same FaultPlan seed => bit-identical executions."""
    assert fault_digest() == fault_digest()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_fault_digest_backend_independent(backend):
    """The resilient ack/retransmit run -- the E18 workload -- produces
    the identical digest on every registered backend."""
    assert fault_digest(backend) == fault_digest("reference")


def instrumented_digest(backend):
    """A fully instrumented raw-network run (fault plan + tracer + ring
    recorder), digested over the outcome, outputs, metrics, and both
    event streams."""
    import hashlib

    from differential import run_observed
    from repro.core.bellman_ford import BellmanFordProgram
    from repro.faults import FaultPlan

    g = random_graph(12, p=0.35, w_max=8, zero_fraction=0.2, seed=9)
    plan = FaultPlan(seed=4, drop_rate=0.1, duplicate_rate=0.15,
                     delay_rate=0.2, corrupt_rate=0.05, max_delay=4)
    obs = run_observed(BACKENDS[backend], g,
                       lambda v: BellmanFordProgram(v, 0),
                       max_rounds=800, fault_plan=plan, with_tracer=True,
                       record_window=3)
    m = obs["metrics"]
    blob = repr((obs["outcome"], obs["outputs"],
                 {k: (sorted(v.items()) if isinstance(v, dict) else v)
                  for k, v in m.items()},
                 obs["trace"], obs["recorded"]))
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_instrumented_digest_backend_independent(backend):
    assert instrumented_digest(backend) == instrumented_digest("reference")


def test_fault_seed_changes_execution():
    from repro.core.bellman_ford import run_bellman_ford
    from repro.faults import FaultPlan

    g = random_graph(12, p=0.35, w_max=8, seed=7)
    stats = []
    for seed in (1, 2, 3):
        res = run_bellman_ford(g, 0, resilient=True,
                               fault_plan=FaultPlan(seed=seed,
                                                    drop_rate=0.3))
        stats.append((res.metrics.messages, dict(res.metrics.faults)))
    assert len({repr(s) for s in stats}) > 1  # seeds actually matter


def backend_digest(backend):
    """Pipelined APSP on one backend, reduced to a digest over every
    measurable observable (distances, rounds, per-channel and per-node
    counters)."""
    import hashlib

    g = random_graph(14, p=0.3, w_max=6, zero_fraction=0.3, seed=11)
    res = run_apsp(g, backend=backend)
    m = res.metrics
    blob = repr((res.dist, m.rounds, m.messages, m.words,
                 m.active_rounds, m.skipped_rounds,
                 sorted(m.channel_messages.items()),
                 sorted(m.node_sends.items())))
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_backend_digest_matches_reference(backend):
    """The simulator backends are not merely equivalent-ish: the full
    observable digest is identical, and stable across runs."""
    assert backend_digest(backend) == backend_digest(backend)
    assert backend_digest(backend) == backend_digest("reference")


def test_backend_digest_stable_under_pythonhashseed():
    """No backend may leak hash ordering (worklist heaps, inbox dicts,
    and the columnar flush of flat counters into Counters are the
    obvious places a set/dict iteration could sneak in).  The subprocess
    iterates the registry itself, so a newly registered backend joins
    the adversarial check automatically."""
    import os
    import subprocess
    import sys

    code = (
        "from repro.perf.backends import BACKENDS; "
        "from test_determinism import backend_digest, instrumented_digest; "
        "names = sorted(BACKENDS); "
        "print(' '.join(backend_digest(b) for b in names), "
        "' '.join(instrumented_digest(b) for b in names))")
    outputs = set()
    for hashseed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", ""), "tests") if p)
        proc = subprocess.run(
            [sys.executable, "-c", code], cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))),
            env=env, capture_output=True, text=True, timeout=240)
        assert proc.returncode == 0, proc.stderr
        plain = proc.stdout.split()[:len(BACKENDS)]
        instrumented = proc.stdout.split()[len(BACKENDS):]
        assert len(set(plain)) == 1, f"backend-dependent digest: {plain}"
        assert len(set(instrumented)) == 1, (
            f"backend-dependent instrumented digest: {instrumented}")
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"hash-seed-dependent executions: {outputs}"


def test_fault_digest_stable_under_pythonhashseed():
    """The digest survives PYTHONHASHSEED changes: fault coin flips are
    SHA-256-derived, never ``hash()``-derived.  Run the same digest in
    subprocesses with adversarial hash seeds and compare."""
    import os
    import subprocess
    import sys

    code = ("from test_determinism import fault_digest; "
            "print(fault_digest())")
    digests = set()
    for hashseed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", ""), "tests") if p)
        proc = subprocess.run(
            [sys.executable, "-c", code], cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))),
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        digests.add(proc.stdout.strip())
    assert len(digests) == 1, f"hash-seed-dependent executions: {digests}"
