"""Determinism: identical inputs give bit-identical executions.

The simulator, the algorithms, and the seeded generators are all
deterministic; any nondeterminism (set iteration, dict ordering, float
context) would make round counts irreproducible and EXPERIMENTS.md
unstable.  Two independent runs must agree on everything measurable.
"""

import pytest

from repro.core import (
    run_approx_apsp,
    run_apsp,
    run_apsp_blocker,
    run_hk_ssp,
    run_scaling_apsp,
    run_short_range,
)
from repro.graphs import random_graph


def snapshots(res):
    m = res.metrics
    return (m.rounds, m.messages, m.words, dict(m.channel_messages),
            dict(m.node_sends))


@pytest.mark.parametrize("runner,kwargs", [
    (run_apsp, {}),
    (run_apsp_blocker, {"h": 3}),
    (run_scaling_apsp, {}),
    (lambda g: run_hk_ssp(g, [0, 3, 7], 4), {}),
    (lambda g: run_short_range(g, 2, 5), {}),
    (lambda g: run_approx_apsp(g, 1.0), {}),
])
def test_two_runs_identical(runner, kwargs):
    g1 = random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=21)
    g2 = random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=21)
    a = runner(g1, **kwargs)
    b = runner(g2, **kwargs)
    assert snapshots(a) == snapshots(b)
    assert a.dist == b.dist
