"""Hypothesis-driven differential tests: the fast backend is
indistinguishable from the reference backend on random weighted graphs.

Coverage is deliberately adversarial for the schedule: directed and
undirected graphs, zero-weight edges (the paper's hard case), fully
disconnected graphs (p=0), and the single-node graph.  Across the three
algorithm families below Hypothesis drives >= 220 generated graphs
(100 + 60 + 60 example budgets) through tests/differential.py, which
compares outputs, round counts, and the full message accounting
envelope for envelope.

The golden-fixture tests at the bottom pin the fast backend to the
*committed* metrics numbers too, so a divergence that Hypothesis
happens to miss still cannot land silently.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from differential import (
    assert_entrypoint_equivalent,
    assert_networks_equivalent,
    metrics_summary,
)
from repro.core import run_apsp, run_apsp_blocker, run_hk_ssp, run_short_range
from repro.core.bellman_ford import run_bellman_ford
from repro.core.unweighted import UnweightedAPSPProgram
from repro.graphs import io as gio
from repro.graphs import random_graph
from repro.perf import use_backend

# p=0.0 gives totally disconnected graphs, zero_fraction=1.0 all-zero
# weights, n=1 the single-node network -- all must behave identically.
graphs = st.builds(
    random_graph,
    n=st.integers(1, 18),
    p=st.one_of(st.just(0.0), st.floats(0.05, 0.6)),
    w_max=st.integers(1, 9),
    zero_fraction=st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 0.6)),
    directed=st.booleans(),
    seed=st.integers(0, 10_000),
)

small_graphs = st.builds(
    random_graph,
    n=st.integers(1, 12),
    p=st.one_of(st.just(0.0), st.floats(0.05, 0.6)),
    w_max=st.integers(1, 8),
    zero_fraction=st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 0.6)),
    directed=st.booleans(),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_bellman_ford_differential(data):
    g = data.draw(graphs)
    source = data.draw(st.integers(0, g.n - 1))
    assert_entrypoint_equivalent(run_bellman_ford, g, source,
                                 compare=("dist", "hops", "parent"))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_pipelined_hk_ssp_differential(data):
    g = data.draw(small_graphs)
    n = g.n
    sources = sorted(data.draw(st.sets(st.integers(0, n - 1),
                                       min_size=1, max_size=min(n, 4))))
    h = data.draw(st.integers(1, max(1, n - 1)))
    assert_entrypoint_equivalent(run_hk_ssp, g, sources, h,
                                 compare=("dist", "sources", "delta"))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_short_range_differential(data):
    g = data.draw(small_graphs)
    source = data.draw(st.integers(0, g.n - 1))
    h = data.draw(st.integers(1, max(1, g.n - 1)))
    assert_entrypoint_equivalent(run_short_range, g, source, h,
                                 compare=("dist", "hops", "parent"))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_raw_network_differential(data):
    """Network-level comparison (sees per-channel counters directly) on
    the unweighted pipelined program, which exercises multi-round
    quiescence detection and idle-round skipping."""
    g = data.draw(small_graphs)
    srcs = tuple(range(g.n))
    assert_networks_equivalent(
        g, lambda v: UnweightedAPSPProgram(v, srcs, cutoff_round=2 * g.n),
        max_rounds=4 * g.n + len(srcs) + 16)


# --- golden fixtures: the fast backend must reproduce the frozen
# --- distances AND the frozen metrics numbers ------------------------

DATA = Path(__file__).parent / "data"
CASES = sorted(p.stem.replace(".apsp", "") for p in DATA.glob("*.apsp.json"))


def _golden_summary(m):
    full = metrics_summary(m)
    return {k: full[k] for k in ("rounds", "messages", "words",
                                 "active_rounds", "max_edge_congestion",
                                 "max_node_sends")}


@pytest.mark.parametrize("name", CASES)
def test_golden_fixture_differential(name):
    g = gio.load(DATA / f"{name}.graph")
    mat = json.loads((DATA / f"{name}.apsp.json").read_text())
    expected = [[float("inf") if d is None else d for d in row]
                for row in mat]
    frozen = json.loads((DATA / f"{name}.metrics.json").read_text())

    ref, fast = assert_entrypoint_equivalent(run_apsp, g)
    assert fast.dist == {x: expected[x] for x in range(g.n)}
    assert _golden_summary(fast.metrics) == frozen["pipelined"], name

    # The blocker algorithm reaches the backend through the ambient
    # default (multi-phase; no per-call backend plumbing).
    with use_backend("fast"):
        blk = run_apsp_blocker(g)
    assert blk.dist == {x: expected[x] for x in range(g.n)}
    assert _golden_summary(blk.metrics) == frozen["blocker"], name
