"""Hypothesis-driven differential tests: the fast backend is
indistinguishable from the reference backend on random weighted graphs.

Coverage is deliberately adversarial for the schedule: directed and
undirected graphs, zero-weight edges (the paper's hard case), fully
disconnected graphs (p=0), and the single-node graph.  Across the three
algorithm families below Hypothesis drives >= 220 generated graphs
(100 + 60 + 60 example budgets) through tests/differential.py, which
compares outputs, round counts, and the full message accounting
envelope for envelope.

The golden-fixture tests at the bottom pin the fast backend to the
*committed* metrics numbers too, so a divergence that Hypothesis
happens to miss still cannot land silently.
"""

import json
from pathlib import Path
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from differential import (
    assert_entrypoint_equivalent,
    assert_instrumented_equivalent,
    assert_networks_equivalent,
    metrics_summary,
)
from repro.congest import Envelope, NodeContext, Program
from repro.core import run_apsp, run_apsp_blocker, run_hk_ssp, run_short_range
from repro.core.bellman_ford import BellmanFordProgram, run_bellman_ford
from repro.core.unweighted import UnweightedAPSPProgram
from repro.faults import FaultPlan
from repro.faults.monitor import oracle_monitor
from repro.graphs import io as gio
from repro.graphs import random_graph
from repro.perf import use_backend

# p=0.0 gives totally disconnected graphs, zero_fraction=1.0 all-zero
# weights, n=1 the single-node network -- all must behave identically.
graphs = st.builds(
    random_graph,
    n=st.integers(1, 18),
    p=st.one_of(st.just(0.0), st.floats(0.05, 0.6)),
    w_max=st.integers(1, 9),
    zero_fraction=st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 0.6)),
    directed=st.booleans(),
    seed=st.integers(0, 10_000),
)

small_graphs = st.builds(
    random_graph,
    n=st.integers(1, 12),
    p=st.one_of(st.just(0.0), st.floats(0.05, 0.6)),
    w_max=st.integers(1, 8),
    zero_fraction=st.one_of(st.just(0.0), st.just(1.0), st.floats(0.0, 0.6)),
    directed=st.booleans(),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_bellman_ford_differential(data):
    g = data.draw(graphs)
    source = data.draw(st.integers(0, g.n - 1))
    assert_entrypoint_equivalent(run_bellman_ford, g, source,
                                 compare=("dist", "hops", "parent"))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_pipelined_hk_ssp_differential(data):
    g = data.draw(small_graphs)
    n = g.n
    sources = sorted(data.draw(st.sets(st.integers(0, n - 1),
                                       min_size=1, max_size=min(n, 4))))
    h = data.draw(st.integers(1, max(1, n - 1)))
    assert_entrypoint_equivalent(run_hk_ssp, g, sources, h,
                                 compare=("dist", "sources", "delta"))


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_short_range_differential(data):
    g = data.draw(small_graphs)
    source = data.draw(st.integers(0, g.n - 1))
    h = data.draw(st.integers(1, max(1, g.n - 1)))
    assert_entrypoint_equivalent(run_short_range, g, source, h,
                                 compare=("dist", "hops", "parent"))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_raw_network_differential(data):
    """Network-level comparison (sees per-channel counters directly) on
    the unweighted pipelined program, which exercises multi-round
    quiescence detection and idle-round skipping."""
    g = data.draw(small_graphs)
    srcs = tuple(range(g.n))
    assert_networks_equivalent(
        g, lambda v: UnweightedAPSPProgram(v, srcs, cutoff_round=2 * g.n),
        max_rounds=4 * g.n + len(srcs) + 16)


# --- instrumented differential: every hook attached, every hook
# --- observation compared --------------------------------------------

# Rates are drawn from a few fixed notches rather than full-range
# floats: the injector only compares the derived coin against the rate,
# so notches cover the behaviour space while shrinking well.
rate = st.sampled_from([0.0, 0.1, 0.3, 0.8])

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 10_000),
    drop_rate=rate,
    duplicate_rate=rate,
    delay_rate=rate,
    max_delay=st.integers(1, 5),
    corrupt_rate=st.sampled_from([0.0, 0.2]),
)


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_instrumented_differential(data):
    """The tentpole property: a fault-injected, monitored, traced,
    event-recorded run is indistinguishable across backends -- same
    outputs, same metrics (fault stats included), same trace event
    stream, same ring-recorder contents, and the same outcome (clean
    quiescence, RoundLimitExceeded, or InvariantViolation) with the
    same post-mortem."""
    g = data.draw(small_graphs)
    source = data.draw(st.integers(0, g.n - 1))
    plan = data.draw(fault_plans)
    record_window = data.draw(st.sampled_from([0, 1, 3]))
    with_monitor = data.draw(st.booleans())
    assert_instrumented_equivalent(
        g, lambda v: BellmanFordProgram(v, source),
        max_rounds=8 * g.n + 80,
        fault_plan=plan,
        monitor_factory=(lambda: oracle_monitor(g, [source]))
        if with_monitor else None,
        with_tracer=True,
        record_window=record_window,
    )


@st.composite
def composite_fault_plans(draw, n):
    """Plans that *combine* fault families -- delays, duplicates, and a
    link failure (plus optionally a transient crash window) in one plan,
    the interaction space the single-family notches above undersample."""
    from repro.faults import CrashWindow, LinkFailure

    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 1).filter(lambda x: x != u))
    start = draw(st.integers(1, 6))
    end = draw(st.one_of(st.none(), st.integers(start, start + 8)))
    link = LinkFailure(u, v, start=start, end=end,
                       bidirectional=draw(st.booleans()))
    crashes = ()
    if draw(st.booleans()):
        c = draw(st.integers(1, 6))
        crashes = (CrashWindow(draw(st.integers(0, n - 1)), c,
                               c + draw(st.integers(1, 6))),)
    return FaultPlan(
        seed=draw(st.integers(0, 10_000)),
        delay_rate=draw(st.sampled_from([0.1, 0.3, 0.8])),
        duplicate_rate=draw(st.sampled_from([0.1, 0.3])),
        max_delay=draw(st.integers(1, 5)),
        link_failures=(link,),
        crashes=crashes,
    )


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_composite_fault_differential(data):
    """Delays + duplicates + a link failure (and sometimes a transient
    crash) in ONE plan: the fault families interact in the delivery
    phase (a delayed duplicate can cross a failing link), and both
    backends must agree on every observation of the combined stream."""
    g = data.draw(small_graphs)
    source = data.draw(st.integers(0, g.n - 1))
    plan = data.draw(composite_fault_plans(g.n))
    assert_instrumented_equivalent(
        g, lambda v: BellmanFordProgram(v, source),
        max_rounds=10 * g.n + 120,
        fault_plan=plan,
        monitor_factory=None,
        with_tracer=True,
        record_window=data.draw(st.sampled_from([0, 2])),
    )


# --- targeted accounting regressions: rounds that carry no payload ----


class ScheduledMute(Program):
    """Node 0 announces in round 1, then *schedules* round 3 but sends
    nothing when it arrives -- an executed round with senders yet zero
    envelopes, the exact case where `active_rounds` and `rounds` part
    ways."""

    def __init__(self, v: int) -> None:
        self.v = v
        self._sched: List[int] = [1, 3] if v == 0 else []
        self.received: List[int] = []

    def on_send(self, ctx: NodeContext, r: int) -> None:
        if self._sched and self._sched[0] == r:
            self._sched.pop(0)
            if r == 1:
                ctx.broadcast("tick")  # round 3 stays silent

    def on_receive(self, ctx: NodeContext, r: int,
                   inbox: List[Envelope]) -> None:
        self.received.append(r)

    def next_active_round(self, ctx: NodeContext, r: int) -> Optional[int]:
        return self._sched[0] if self._sched else None

    def output(self, ctx: NodeContext):
        return self.received


class TestAccountingParity:
    """`rounds` / `active_rounds` / `skipped_rounds` stay identical on
    rounds whose only activity is a no-op wake-up or a fault-delayed
    delivery."""

    def _line(self, n):
        from repro.graphs import path_graph
        return path_graph(n, w=1)

    @pytest.mark.parametrize("plan", [None, FaultPlan(seed=2)],
                             ids=["plain", "trivial-plan"])
    def test_zero_envelope_sender_round(self, plan):
        ref, fast = assert_networks_equivalent(
            self._line(4), ScheduledMute, max_rounds=10, fault_plan=plan)
        # The scenario really exercised the gap: node 0 woke at round 3
        # and sent nothing, so the silent round is invisible to
        # `rounds`/`active_rounds` (both stop at the last round with
        # traffic, round 1) yet round 2 was skipped on the way there.
        assert (ref.metrics.rounds, ref.metrics.active_rounds,
                ref.metrics.skipped_rounds) == (1, 1, 1)

    def test_delivery_only_rounds(self):
        """With delay_rate=1 every envelope arrives late, so some rounds
        execute purely because the injector holds in-flight traffic --
        neither backend may skip past them nor count them differently."""
        plan = FaultPlan(seed=11, delay_rate=1.0, max_delay=4)
        obs = assert_instrumented_equivalent(
            self._line(4), lambda v: BellmanFordProgram(v, 0),
            max_rounds=80, fault_plan=plan, with_tracer=True)
        m = obs["metrics"]
        assert m["faults"]["delays"] > 0
        assert m["active_rounds"] <= m["rounds"]

    def test_delivery_only_rounds_with_gaps_skip_identically(self):
        """Sparse schedule + long delays: the worklist backend must jump
        to the delivery round (skipped_rounds) exactly like the
        reference scan does."""
        plan = FaultPlan(seed=5, delay_rate=1.0, max_delay=6)
        obs = assert_instrumented_equivalent(
            self._line(6), ScheduledMute, max_rounds=40,
            fault_plan=plan, with_tracer=True, record_window=2)
        assert obs["metrics"]["skipped_rounds"] >= 0  # parity already pinned


# --- golden fixtures: the fast backend must reproduce the frozen
# --- distances AND the frozen metrics numbers ------------------------

DATA = Path(__file__).parent / "data"
CASES = sorted(p.stem.replace(".apsp", "") for p in DATA.glob("*.apsp.json"))


def _golden_summary(m):
    full = metrics_summary(m)
    return {k: full[k] for k in ("rounds", "messages", "words",
                                 "active_rounds", "max_edge_congestion",
                                 "max_node_sends")}


@pytest.mark.parametrize("name", CASES)
def test_golden_fixture_differential(name):
    g = gio.load(DATA / f"{name}.graph")
    mat = json.loads((DATA / f"{name}.apsp.json").read_text())
    expected = [[float("inf") if d is None else d for d in row]
                for row in mat]
    frozen = json.loads((DATA / f"{name}.metrics.json").read_text())

    ref, fast = assert_entrypoint_equivalent(run_apsp, g)
    assert fast.dist == {x: expected[x] for x in range(g.n)}
    assert _golden_summary(fast.metrics) == frozen["pipelined"], name

    # The blocker algorithm reaches the backend through the ambient
    # default (multi-phase; no per-call backend plumbing).
    with use_backend("fast"):
        blk = run_apsp_blocker(g)
    assert blk.dist == {x: expected[x] for x in range(g.n)}
    assert _golden_summary(blk.metrics) == frozen["blocker"], name


@pytest.mark.parametrize("name", CASES)
def test_golden_fixture_instrumented_differential(name):
    """The committed fixture graphs driven with *every* hook attached:
    a fixed seeded fault plan, the oracle monitor, a tracer, and the
    ring recorder.  Whatever happens (quiescence, round-limit, or a
    monitor violation from the injected corruption) must happen
    identically on both backends."""
    g = gio.load(DATA / f"{name}.graph")
    plan = FaultPlan(seed=13, drop_rate=0.1, duplicate_rate=0.1,
                     delay_rate=0.2, max_delay=3, corrupt_rate=0.1)
    assert_instrumented_equivalent(
        g, lambda v: BellmanFordProgram(v, 0),
        max_rounds=20 * g.n + 100,
        fault_plan=plan,
        monitor_factory=lambda: oracle_monitor(g, [0]),
        with_tracer=True,
        record_window=3,
    )
