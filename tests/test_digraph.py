"""Unit tests for the weighted digraph substrate."""

import pytest

from repro.graphs import GraphError, WeightedDigraph


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            WeightedDigraph(0)

    def test_single_node(self):
        g = WeightedDigraph(1)
        assert g.n == 1 and g.m == 0
        assert g.out_edges(0) == ()
        assert g.is_comm_connected()

    def test_add_edge_and_query(self):
        g = WeightedDigraph(3)
        g.add_edge(0, 1, 5)
        g.add_edge(1, 2, 0)
        assert g.weight(0, 1) == 5
        assert g.weight(1, 0) is None
        assert g.has_edge(1, 2)
        assert g.max_weight == 5
        assert g.m == 2

    def test_negative_weight_rejected(self):
        g = WeightedDigraph(2)
        with pytest.raises(GraphError, match="non-negative"):
            g.add_edge(0, 1, -1)

    def test_non_integer_weight_rejected(self):
        g = WeightedDigraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 1.5)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, True)

    def test_self_loop_rejected(self):
        g = WeightedDigraph(2)
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge(1, 1, 0)

    def test_out_of_range_rejected(self):
        g = WeightedDigraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2, 1)
        with pytest.raises(GraphError):
            g.add_edge(-1, 0, 1)

    def test_parallel_edges_keep_minimum(self):
        g = WeightedDigraph(2)
        g.add_edge(0, 1, 5)
        g.add_edge(0, 1, 3)
        g.add_edge(0, 1, 7)
        assert g.weight(0, 1) == 3
        assert g.m == 1

    def test_frozen_after_query(self):
        g = WeightedDigraph(3)
        g.add_edge(0, 1, 1)
        _ = g.out_edges(0)
        with pytest.raises(GraphError, match="frozen"):
            g.add_edge(1, 2, 1)


class TestUndirected:
    def test_undirected_adds_both_directions(self):
        g = WeightedDigraph(3, directed=False)
        g.add_edge(0, 1, 4)
        assert g.weight(0, 1) == 4
        assert g.weight(1, 0) == 4

    def test_undirected_from_edges(self):
        g = WeightedDigraph.undirected_from_edges(3, [(0, 1, 2), (1, 2, 3)])
        assert not g.directed
        assert g.weight(2, 1) == 3


class TestAdjacency:
    def test_in_out_comm(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 2), (2, 1, 3), (1, 3, 0)])
        assert g.out_edges(1) == ((3, 0),)
        assert set(g.in_edges(1)) == {(0, 2), (2, 3)}
        assert g.comm_neighbors(1) == (0, 2, 3)

    def test_reverse(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        r = g.reverse()
        assert r.weight(1, 0) == 2
        assert r.weight(2, 1) == 3
        assert r.weight(0, 1) is None

    def test_underlying_undirected_collapses_min(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 5), (1, 0, 2)])
        u = g.underlying_undirected()
        assert u.weight(0, 1) == 2 and u.weight(1, 0) == 2

    def test_connectivity_detection(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 1), (2, 3, 1)])
        assert not g.is_comm_connected()
        g2 = WeightedDigraph.from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        assert g2.is_comm_connected()

    def test_edges_sorted_deterministic(self):
        g = WeightedDigraph.from_edges(3, [(2, 0, 1), (0, 1, 2), (1, 2, 3)])
        assert list(g.edges()) == [(0, 1, 2), (1, 2, 3), (2, 0, 1)]


class TestReverseDirectedness:
    """Regression (code review): reverse() used to flag undirected
    graphs as directed, flipping the serialisation header."""

    def test_undirected_reverse_is_identity(self):
        g = WeightedDigraph.undirected_from_edges(3, [(0, 1, 2), (1, 2, 5)])
        r = g.reverse()
        assert not r.directed
        assert list(r.edges()) == list(g.edges())

    def test_directed_reverse_still_directed(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 7)])
        r = g.reverse()
        assert r.directed and r.weight(1, 0) == 7 and r.weight(0, 1) is None
