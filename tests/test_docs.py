"""Documentation health checks: the docs' code runs, the files
cross-reference real artefacts, and the public API is documented."""

import inspect
import re
from pathlib import Path

import pytest

import repro
import repro.analysis
import repro.congest
import repro.core
import repro.graphs

ROOT = Path(__file__).parent.parent


class TestTutorialCode:
    def test_flood_max_example_runs(self):
        """The tutorial's complete example, executed verbatim in spirit."""
        from repro.congest import Network, Program
        from repro.graphs import random_graph

        class FloodMax(Program):
            def __init__(self, v):
                self.best = v
                self._announce = 1

            def on_send(self, ctx, r):
                if self._announce == r:
                    self._announce = None
                    ctx.broadcast(("max", self.best))

            def on_receive(self, ctx, r, inbox):
                top = max(env.payload[1] for env in inbox)
                if top > self.best:
                    self.best = top
                    self._announce = r + 1

            def next_active_round(self, ctx, r):
                return self._announce

            def output(self, ctx):
                return self.best

        g = random_graph(16, p=0.25, w_max=1, seed=1)
        net = Network(g, FloodMax)
        m = net.run(max_rounds=60)
        assert set(net.outputs()) == {15}
        from repro.graphs import eccentricity_bound
        assert m.rounds <= eccentricity_bound(g) + 1


class TestDocFilesExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "NOTATION.md",
        "docs/TUTORIAL.md", "docs/ALGORITHM.md", "docs/OBSERVABILITY.md",
        "docs/PERFORMANCE.md", "docs/RECOVERY.md", "docs/SERVING.md",
        "docs/CAMPAIGNS.md",
    ])
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, name

    def test_docs_reference_real_test_files(self):
        """Every tests/... path mentioned in the docs must exist."""
        for doc in ("docs/ALGORITHM.md", "DESIGN.md", "README.md"):
            text = (ROOT / doc).read_text()
            for ref in re.findall(r"tests/\w+\.py", text):
                assert (ROOT / ref).exists(), (doc, ref)

    def test_docs_reference_real_modules(self):
        for doc in ("NOTATION.md",):
            text = (ROOT / doc).read_text()
            for ref in re.findall(r"repro\.[a-z_.]+\.[a-z_]+", text):
                parts = ref.split(".")
                obj = repro
                try:
                    for p in parts[1:]:
                        obj = getattr(obj, p)
                except AttributeError:
                    pytest.fail(f"{doc} references missing {ref}")


class TestPublicAPIDocumented:
    @pytest.mark.parametrize("module", [
        repro.core, repro.graphs, repro.congest, repro.analysis,
    ])
    def test_all_public_callables_have_docstrings(self, module):
        missing = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public API: {missing}"
