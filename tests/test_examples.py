"""Smoke tests: every example script runs end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    assert any(p.stem == "quickstart" for p in EXAMPLES)
