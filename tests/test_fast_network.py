"""Contract tests for the fast simulator backend beyond the
differential harness: constructor parity, hook refusal, resumption,
registry publishing, and backend selection semantics."""

import os
import subprocess
import sys

import pytest

from repro.congest import Network, RoundLimitExceeded
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, Tracer
from repro.perf import (
    BackendUnsupported,
    FastNetwork,
    get_default_backend,
    make_network,
    set_default_backend,
    use_backend,
)
from test_congest_network import Pinger, Relay, line


class TestConstructorParity:
    """Invalid arguments produce the *same* error text on both backends,
    so swapping backends never changes what a user debugging a bad call
    sees."""

    @pytest.mark.parametrize("kwargs", [
        {"max_message_words": 0},
        {"channel_capacity": 0},
        {"record_window": -1},
    ])
    def test_same_validation_message(self, kwargs):
        with pytest.raises(ValueError) as ref_exc:
            Network(line(3), Relay, **kwargs)
        with pytest.raises(ValueError) as fast_exc:
            FastNetwork(line(3), Relay, **kwargs)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_same_nodeless_graph_message(self):
        class NoNodes:
            n = 0

        with pytest.raises(ValueError) as ref_exc:
            Network(NoNodes(), Relay)
        with pytest.raises(ValueError) as fast_exc:
            FastNetwork(NoNodes(), Relay)
        assert str(fast_exc.value) == str(ref_exc.value)


class TestHookRefusal:
    """Unsupported hooks raise at construction -- never a mid-run
    surprise, never a silently uninstrumented execution."""

    def test_monitor_refused(self):
        with pytest.raises(BackendUnsupported, match="monitor"):
            FastNetwork(line(3), Relay, monitor=object())

    def test_tracer_refused(self):
        with pytest.raises(BackendUnsupported, match="tracer"):
            FastNetwork(line(3), Relay, tracer=Tracer())

    def test_record_window_refused(self):
        with pytest.raises(BackendUnsupported, match="record_window"):
            FastNetwork(line(3), Relay, record_window=4)

    def test_real_fault_plan_refused(self):
        with pytest.raises(BackendUnsupported, match="fault"):
            FastNetwork(line(3), Relay,
                        fault_plan=FaultPlan(seed=1, drop_rate=0.5))

    def test_trivial_fault_plan_accepted(self):
        """An all-zero plan injects nothing -- the reference backend
        treats it as the zero-overhead path and so does the fast one."""
        net = FastNetwork(line(3), Pinger, fault_plan=FaultPlan())
        m = net.run(max_rounds=10)
        assert m.messages == 1

    def test_error_points_at_reference_backend(self):
        with pytest.raises(BackendUnsupported, match="reference"):
            FastNetwork(line(3), Relay, tracer=Tracer())


class TestResumption:
    """Same absolute-``max_rounds`` re-entry contract as the reference
    backend (satellite: RoundLimitExceeded resumption)."""

    def test_interrupted_run_resumes_to_same_result(self):
        n = 6
        net = FastNetwork(line(n), Relay)
        with pytest.raises(RoundLimitExceeded) as exc:
            net.run(max_rounds=2)  # token is only 2 hops in
        assert exc.value.post_mortem is not None
        net.run(max_rounds=20)     # absolute budget; resumes at round 3
        fresh = Network(line(n), Relay)
        fm = fresh.run(max_rounds=20)
        assert [net.output_of(v) for v in range(n)] == \
               [fresh.output_of(v) for v in range(n)]
        assert (net.metrics.rounds, net.metrics.messages,
                net.metrics.active_rounds, net.metrics.skipped_rounds) == \
               (fm.rounds, fm.messages, fm.active_rounds, fm.skipped_rounds)

    def test_quiescent_rerun_is_noop(self):
        net = FastNetwork(line(4), Relay)
        m = net.run(max_rounds=100)
        m2 = net.run(max_rounds=100)
        assert m2 is m
        assert (m2.rounds, m2.messages) == (3, 3)

    def test_programs_started_exactly_once(self):
        starts = []

        class CountingPinger(Pinger):
            def on_start(self, ctx):
                starts.append(ctx.node)

        net = FastNetwork(line(3), CountingPinger)
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=0)
        net.run(max_rounds=10)
        net.run(max_rounds=10)
        assert starts == [0, 1, 2]


class TestRegistrySupport:
    """The one network-side hook the fast backend does honor."""

    def test_publishes_run_metrics(self):
        reg = MetricsRegistry()
        net = FastNetwork(line(4), Relay, registry=reg)
        m = net.run(max_rounds=20)
        assert reg.counter_total("congest.messages") == m.messages
        assert reg.counter_total("congest.rounds") == m.rounds
        # per-round wall-clock lands in the same histogram the
        # reference backend uses, one observation per executed round
        ref_reg = MetricsRegistry()
        Network(line(4), Relay, registry=ref_reg).run(max_rounds=20)
        (ref_hist,) = ref_reg.histograms("congest.round_wall_s")
        (fast_hist,) = reg.histograms("congest.round_wall_s")
        assert fast_hist.count == ref_hist.count

    def test_republish_is_delta_based(self):
        reg = MetricsRegistry()
        net = FastNetwork(line(4), Relay, registry=reg)
        m = net.run(max_rounds=20)
        net.run(max_rounds=20)  # quiescent re-run must not double-count
        assert reg.counter_total("congest.messages") == m.messages

    def test_matches_reference_registry_numbers(self):
        ref_reg, fast_reg = MetricsRegistry(), MetricsRegistry()
        Network(line(5), Relay, registry=ref_reg).run(max_rounds=20)
        FastNetwork(line(5), Relay, registry=fast_reg).run(max_rounds=20)
        ref_snap = ref_reg.snapshot()
        fast_snap = fast_reg.snapshot()
        # wall-clock histograms differ in timings by construction; the
        # counts must agree
        for snap in (ref_snap, fast_snap):
            snap.get("histograms", snap).pop("congest.round_wall_s", None)
        assert fast_snap == ref_snap


class TestBackendSelection:
    def test_default_is_reference(self):
        assert get_default_backend() == "reference"
        assert isinstance(make_network(line(3), Relay), Network)

    def test_explicit_fast(self):
        assert isinstance(make_network(line(3), Relay, backend="fast"),
                          FastNetwork)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            make_network(line(3), Relay, backend="turbo")

    def test_explicit_fast_with_unsupported_hook_raises(self):
        with pytest.raises(BackendUnsupported):
            make_network(line(3), Relay, backend="fast", tracer=Tracer())

    def test_ambient_fast_with_unsupported_hook_falls_back(self):
        with use_backend("fast"):
            net = make_network(line(3), Relay, tracer=Tracer())
        assert isinstance(net, Network)

    def test_ambient_fast_without_hooks_sticks(self):
        with use_backend("fast"):
            assert isinstance(make_network(line(3), Relay), FastNetwork)
        assert get_default_backend() == "reference"

    def test_use_backend_none_is_noop(self):
        with use_backend(None):
            assert get_default_backend() == "reference"

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            set_default_backend("turbo")
        assert get_default_backend() == "reference"


class TestEnvSelection:
    """REPRO_BACKEND picks the ambient default at import time; a typo
    fails the import loudly instead of silently simulating on the wrong
    backend."""

    def _run(self, value):
        env = dict(os.environ, REPRO_BACKEND=value)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        return subprocess.run(
            [sys.executable, "-c",
             "from repro.perf import get_default_backend; "
             "print(get_default_backend())"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, capture_output=True, text=True, timeout=120)

    def test_env_fast(self):
        proc = self._run("fast")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fast"

    def test_env_typo_fails_loud(self):
        proc = self._run("fasst")
        assert proc.returncode != 0
        assert "REPRO_BACKEND" in proc.stderr
