"""Contract tests for the fast simulator backend beyond the
differential harness: constructor parity, hook support, resumption,
registry publishing, and backend selection semantics."""

import os
import subprocess
import sys

import pytest

from repro.congest import Network, RoundLimitExceeded
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, Tracer
from repro.perf import (
    BackendUnsupported,
    FastNetwork,
    get_default_backend,
    make_network,
    set_default_backend,
    use_backend,
)
from test_congest_network import Pinger, Relay, line


@pytest.fixture
def clean_backend(monkeypatch):
    """Run with no ambient backend chosen and no REPRO_BACKEND set, so
    selection-precedence assertions hold even when the surrounding test
    process exports REPRO_BACKEND=fast (the CI matrix does exactly
    that).  monkeypatch restores both afterwards."""
    from repro.perf import backends
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setattr(backends, "_default_backend", None)


class TestConstructorParity:
    """Invalid arguments produce the *same* error text on both backends,
    so swapping backends never changes what a user debugging a bad call
    sees."""

    @pytest.mark.parametrize("kwargs", [
        {"max_message_words": 0},
        {"channel_capacity": 0},
        {"record_window": -1},
    ])
    def test_same_validation_message(self, kwargs):
        with pytest.raises(ValueError) as ref_exc:
            Network(line(3), Relay, **kwargs)
        with pytest.raises(ValueError) as fast_exc:
            FastNetwork(line(3), Relay, **kwargs)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_same_nodeless_graph_message(self):
        class NoNodes:
            n = 0

        with pytest.raises(ValueError) as ref_exc:
            Network(NoNodes(), Relay)
        with pytest.raises(ValueError) as fast_exc:
            FastNetwork(NoNodes(), Relay)
        assert str(fast_exc.value) == str(ref_exc.value)


class TestHookSupport:
    """Every Network hook is honored by the fast backend (deep parity is
    pinned by tests/differential.py; these are the direct contract
    checks that each hook actually *fires*)."""

    def test_fault_plan_injects(self):
        plan = FaultPlan(seed=7, drop_rate=1.0)
        net = FastNetwork(line(3), Pinger, fault_plan=plan)
        m = net.run(max_rounds=10)
        assert m.faults.get("drops", 0) == 1
        assert net.fault_injector.stats.drops == 1

    def test_trivial_fault_plan_accepted(self):
        """An all-zero plan injects nothing -- the reference backend
        treats it as the zero-overhead path and so does the fast one."""
        net = FastNetwork(line(3), Pinger, fault_plan=FaultPlan())
        m = net.run(max_rounds=10)
        assert m.messages == 1

    def test_tracer_sees_sends_and_rounds(self):
        tracer = Tracer()
        FastNetwork(line(4), Relay, tracer=tracer).run(max_rounds=20)
        assert len(tracer.of_kind("net.send")) == 3
        assert tracer.of_kind("net.round")  # one per executed round

    def test_monitor_called_same_rounds_same_touched(self):
        def capture(into):
            class CapturingMonitor:
                def after_round(self, network, r, touched):
                    into.append((r, sorted(touched)))
            return CapturingMonitor()

        fast_calls, ref_calls = [], []
        FastNetwork(line(4), Relay, monitor=capture(fast_calls)).run(
            max_rounds=20)
        Network(line(4), Relay, monitor=capture(ref_calls)).run(max_rounds=20)
        assert fast_calls == ref_calls
        assert fast_calls  # the hook actually fired

    def test_record_window_feeds_post_mortem(self):
        net = FastNetwork(line(6), Relay, record_window=2)
        with pytest.raises(RoundLimitExceeded) as exc:
            net.run(max_rounds=2)
        pm = exc.value.post_mortem
        assert pm.record_window == 2
        assert pm.recent_events  # the ring recorder captured the sends
        assert "node" in pm.render()

    def test_nothing_raises_backend_unsupported(self):
        """The unsupported set is empty: the historically-refused hook
        combinations all construct (and run) now."""
        net = FastNetwork(line(3), Pinger,
                          fault_plan=FaultPlan(seed=1, drop_rate=0.5),
                          monitor=None, tracer=Tracer(), record_window=3)
        net.run(max_rounds=10)
        assert issubclass(BackendUnsupported, RuntimeError)  # still public API


class TestResumption:
    """Same absolute-``max_rounds`` re-entry contract as the reference
    backend (satellite: RoundLimitExceeded resumption)."""

    def test_interrupted_run_resumes_to_same_result(self):
        n = 6
        net = FastNetwork(line(n), Relay)
        with pytest.raises(RoundLimitExceeded) as exc:
            net.run(max_rounds=2)  # token is only 2 hops in
        assert exc.value.post_mortem is not None
        net.run(max_rounds=20)     # absolute budget; resumes at round 3
        fresh = Network(line(n), Relay)
        fm = fresh.run(max_rounds=20)
        assert [net.output_of(v) for v in range(n)] == \
               [fresh.output_of(v) for v in range(n)]
        assert (net.metrics.rounds, net.metrics.messages,
                net.metrics.active_rounds, net.metrics.skipped_rounds) == \
               (fm.rounds, fm.messages, fm.active_rounds, fm.skipped_rounds)

    def test_interrupted_fault_run_keeps_in_flight_envelopes(self):
        """Delayed envelopes survive a RoundLimitExceeded and deliver on
        resumption, exactly as on the reference backend."""
        plan = FaultPlan(seed=3, delay_rate=1.0, max_delay=5)
        nets = []
        for cls in (Network, FastNetwork):
            net = cls(line(4), Relay, fault_plan=plan)
            with pytest.raises(RoundLimitExceeded):
                net.run(max_rounds=1)
            assert net.fault_injector.in_flight_snapshot()
            net.run(max_rounds=60)
            nets.append(net)
        ref, fast = nets
        assert fast.outputs() == ref.outputs()
        assert fast.metrics.faults == ref.metrics.faults
        assert (fast.metrics.rounds, fast.metrics.active_rounds) == \
               (ref.metrics.rounds, ref.metrics.active_rounds)

    def test_quiescent_rerun_is_noop(self):
        net = FastNetwork(line(4), Relay)
        m = net.run(max_rounds=100)
        m2 = net.run(max_rounds=100)
        assert m2 is m
        assert (m2.rounds, m2.messages) == (3, 3)

    def test_programs_started_exactly_once(self):
        starts = []

        class CountingPinger(Pinger):
            def on_start(self, ctx):
                starts.append(ctx.node)

        net = FastNetwork(line(3), CountingPinger)
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=0)
        net.run(max_rounds=10)
        net.run(max_rounds=10)
        assert starts == [0, 1, 2]


class TestRegistrySupport:
    def test_publishes_run_metrics(self):
        reg = MetricsRegistry()
        net = FastNetwork(line(4), Relay, registry=reg)
        m = net.run(max_rounds=20)
        assert reg.counter_total("congest.messages") == m.messages
        assert reg.counter_total("congest.rounds") == m.rounds
        # per-round wall-clock lands in the same histogram the
        # reference backend uses, one observation per executed round
        ref_reg = MetricsRegistry()
        Network(line(4), Relay, registry=ref_reg).run(max_rounds=20)
        (ref_hist,) = ref_reg.histograms("congest.round_wall_s")
        (fast_hist,) = reg.histograms("congest.round_wall_s")
        assert fast_hist.count == ref_hist.count

    def test_republish_is_delta_based(self):
        reg = MetricsRegistry()
        net = FastNetwork(line(4), Relay, registry=reg)
        m = net.run(max_rounds=20)
        net.run(max_rounds=20)  # quiescent re-run must not double-count
        assert reg.counter_total("congest.messages") == m.messages

    def test_matches_reference_registry_numbers(self):
        ref_reg, fast_reg = MetricsRegistry(), MetricsRegistry()
        Network(line(5), Relay, registry=ref_reg).run(max_rounds=20)
        FastNetwork(line(5), Relay, registry=fast_reg).run(max_rounds=20)
        ref_snap = ref_reg.snapshot()
        fast_snap = fast_reg.snapshot()
        # wall-clock histograms differ in timings by construction; the
        # counts must agree
        for snap in (ref_snap, fast_snap):
            snap.get("histograms", snap).pop("congest.round_wall_s", None)
        assert fast_snap == ref_snap


class TestBackendSelection:
    def test_default_is_reference(self, clean_backend):
        assert get_default_backend() == "reference"
        assert isinstance(make_network(line(3), Relay), Network)

    def test_explicit_fast(self):
        assert isinstance(make_network(line(3), Relay, backend="fast"),
                          FastNetwork)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            make_network(line(3), Relay, backend="turbo")

    def test_explicit_fast_with_hooks_constructs_fast(self):
        """Hooks no longer influence selection: an explicit fast request
        with a tracer gets a FastNetwork, not an error."""
        net = make_network(line(3), Relay, backend="fast", tracer=Tracer())
        assert isinstance(net, FastNetwork)

    def test_ambient_fast_with_hooks_stays_fast(self):
        """The old silent fall-back to the reference backend for
        instrumented ambient calls is gone."""
        with use_backend("fast"):
            net = make_network(line(3), Relay, tracer=Tracer(),
                               fault_plan=FaultPlan(seed=1, drop_rate=0.2),
                               record_window=2)
        assert isinstance(net, FastNetwork)

    def test_ambient_fast_without_hooks_sticks(self, clean_backend):
        with use_backend("fast"):
            assert isinstance(make_network(line(3), Relay), FastNetwork)
        assert get_default_backend() == "reference"

    def test_use_backend_none_is_noop(self, clean_backend):
        with use_backend(None):
            assert get_default_backend() == "reference"

    def test_use_backend_restores_unresolved_env(self, monkeypatch):
        """use_backend() inside a not-yet-resolved REPRO_BACKEND process
        restores the *unresolved* state, so the env var still wins
        afterwards."""
        from repro.perf import backends
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        monkeypatch.setattr(backends, "_default_backend", None)
        with use_backend("reference"):
            assert get_default_backend() == "reference"
        assert get_default_backend() == "fast"

    def test_set_default_backend_validates(self, clean_backend):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            set_default_backend("turbo")
        assert get_default_backend() == "reference"


class TestEnvSelection:
    """REPRO_BACKEND picks the ambient default, validated lazily at the
    first get_default_backend()/make_network() call: a typo must not
    make the package unimportable, but must fail loudly -- naming the
    variable and the bad value -- the moment a simulation is requested."""

    def _run(self, value, code):
        env = dict(os.environ, REPRO_BACKEND=value)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        return subprocess.run(
            [sys.executable, "-c", code],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, capture_output=True, text=True, timeout=120)

    def test_env_fast(self):
        proc = self._run("fast",
                         "from repro.perf import get_default_backend; "
                         "print(get_default_backend())")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fast"

    def test_env_typo_import_survives(self):
        """Importing the package (and building the CLI parser -- what
        ``repro --help`` does) must not touch REPRO_BACKEND."""
        proc = self._run("fasst",
                         "import repro, repro.perf, repro.cli; "
                         "repro.cli.build_parser(); print('ok')")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"

    def test_env_typo_fails_loud_on_first_use(self):
        proc = self._run("fasst",
                         "from repro.perf import get_default_backend; "
                         "get_default_backend()")
        assert proc.returncode != 0
        assert "REPRO_BACKEND" in proc.stderr
        assert "fasst" in proc.stderr

    def test_env_typo_cli_help_ok_run_fails_clean(self):
        help_proc = self._run("fasst", "import repro.cli, sys; "
                              "sys.exit(repro.cli.main(['--help']))")
        # argparse --help exits 0 after printing usage
        assert help_proc.returncode == 0, help_proc.stderr
        assert "usage" in help_proc.stdout.lower()
