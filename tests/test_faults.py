"""Fault plans, the injector, network validation, and post-mortems."""

import pytest

from repro.congest import Network, RingTraceRecorder, RoundLimitExceeded
from repro.core.bellman_ford import BellmanFordProgram, run_bellman_ford
from repro.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LinkFailure,
    corrupt_payload,
)
from repro.graphs import random_graph
from repro.graphs.generators import path_graph
from repro.graphs.reference import dijkstra


def bf_factory(source=0):
    return lambda v: BellmanFordProgram(v, source=source)


class TestFaultPlan:
    def test_default_plan_is_trivial(self):
        assert FaultPlan().is_trivial

    def test_any_rate_makes_plan_nontrivial(self):
        assert not FaultPlan(drop_rate=0.1).is_trivial
        assert not FaultPlan(crashes=(CrashWindow(0, 1),)).is_trivial
        assert not FaultPlan(link_failures=(LinkFailure(0, 1),)).is_trivial

    @pytest.mark.parametrize("field", ["drop_rate", "duplicate_rate",
                                       "delay_rate", "corrupt_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_validated(self, field, bad):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: bad})

    def test_max_delay_validated(self):
        with pytest.raises(ValueError, match="max_delay"):
            FaultPlan(max_delay=0)

    def test_describe_names_active_faults(self):
        plan = FaultPlan(seed=7, drop_rate=0.25,
                         crashes=(CrashWindow(3, 10, 20),))
        text = plan.describe()
        assert "seed=7" in text and "drop=0.25" in text
        assert "crash 3@10:20" in text


class TestCrashWindow:
    def test_parse_permanent(self):
        cw = CrashWindow.parse("3@10")
        assert (cw.node, cw.crash_round, cw.restart_round) == (3, 10, None)
        assert cw.down_at(10) and cw.down_at(10_000) and not cw.down_at(9)

    def test_parse_with_restart(self):
        cw = CrashWindow.parse("5@4:9")
        assert cw.down_at(4) and cw.down_at(8)
        assert not cw.down_at(9)  # restart round is up again

    @pytest.mark.parametrize("bad", ["3", "x@4", "3@", "3@a:b", ""])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="crash spec"):
            CrashWindow.parse(bad)

    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError, match="restart_round must be >"):
            CrashWindow(3, 10, 5)
        with pytest.raises(ValueError, match="restart_round must be >"):
            CrashWindow(3, 10, 10)  # equal is an empty window too
        with pytest.raises(ValueError, match="crash spec"):
            CrashWindow.parse("3@10:5")

    @pytest.mark.parametrize("kwargs, field", [
        (dict(node=-1, crash_round=4), "node"),
        (dict(node=0, crash_round=-2), "crash_round"),
        (dict(node=0, crash_round=4, restart_round=-1), "restart_round"),
    ])
    def test_negative_fields_rejected(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            CrashWindow(**kwargs)

    def test_parse_checkpoint_suffix(self):
        cw = CrashWindow.parse("3@10:25/checkpoint")
        assert (cw.node, cw.crash_round, cw.restart_round) == (3, 10, 25)
        assert cw.restart_from == "checkpoint"
        plan = FaultPlan(crashes=(cw,))
        assert "crash 3@10:25/checkpoint" in plan.describe()

    def test_checkpoint_requires_restart_round(self):
        with pytest.raises(ValueError, match="cannot restart"):
            CrashWindow(3, 10, restart_from="checkpoint")
        with pytest.raises(ValueError, match="crash spec"):
            CrashWindow.parse("3@10/checkpoint")

    def test_restart_from_validated(self):
        with pytest.raises(ValueError, match="restart_from"):
            CrashWindow(3, 10, 25, restart_from="disk")


class TestCorruptPayload:
    def test_perturbs_first_numeric_field(self):
        new, changed = corrupt_payload((4, 2), 1)
        assert changed and new == (3, 2)

    def test_recurses_into_nested_tuples(self):
        new, changed = corrupt_payload(("D", (7, 1)), 2)
        assert changed and new == ("D", (5, 1))

    def test_bools_and_strings_untouched(self):
        assert corrupt_payload((True, "x"), 1) == ((True, "x"), False)


class TestFaultInjectorDeterminism:
    def test_same_seed_same_fate(self):
        g = random_graph(10, p=0.4, w_max=5, seed=3)
        plan = FaultPlan(seed=9, drop_rate=0.2, duplicate_rate=0.1,
                         delay_rate=0.1, corrupt_rate=0.1)

        def run():
            net = Network(g, bf_factory(), fault_plan=plan)
            m = net.run(max_rounds=200)
            return (m.rounds, m.messages, dict(m.faults),
                    sorted(m.channel_messages.items()), net.outputs())

        assert run() == run()

    def test_different_seed_different_execution(self):
        g = random_graph(10, p=0.4, w_max=5, seed=3)

        def channel_counts(seed):
            net = Network(g, bf_factory(),
                          fault_plan=FaultPlan(seed=seed, drop_rate=0.3))
            m = net.run(max_rounds=200)
            return (m.messages, sorted(m.channel_messages.items()),
                    dict(m.faults))

        runs = [channel_counts(seed) for seed in (1, 2, 3, 4)]
        assert len({repr(r) for r in runs}) > 1  # the seed matters
        assert channel_counts(1) == runs[0]      # ... deterministically


class TestInjectedFaultSemantics:
    def test_drops_lose_relaxations(self):
        g = random_graph(12, p=0.35, w_max=8, seed=7)
        true, _ = dijkstra(g, 0)
        net = Network(g, bf_factory(),
                      fault_plan=FaultPlan(seed=3, drop_rate=0.15))
        net.run(max_rounds=100)
        dist = [o[0] for o in net.outputs()]
        assert net.metrics.faults["drops"] > 0
        assert dist != list(true)  # without retransmission, drops hurt
        assert all(d >= t for d, t in zip(dist, true))  # never undershoot

    def test_duplicates_and_delays_are_harmless_to_bf(self):
        # Bellman-Ford relaxation is idempotent and monotone: duplicated
        # or late estimates cannot change the fixpoint.
        g = random_graph(12, p=0.35, w_max=8, seed=7)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=5, duplicate_rate=0.3, delay_rate=0.3,
                         max_delay=4)
        net = Network(g, bf_factory(), fault_plan=plan)
        net.run(max_rounds=300)
        assert [o[0] for o in net.outputs()] == list(true)
        assert (net.metrics.faults["duplicates"] > 0
                and net.metrics.faults["delays"] > 0)

    def test_permanent_link_failure_partitions_path(self):
        g = path_graph(4, w=1)  # 0 - 1 - 2 - 3
        plan = FaultPlan(link_failures=(LinkFailure(1, 2),))
        net = Network(g, bf_factory(), fault_plan=plan)
        net.run(max_rounds=50)
        dist = [o[0] for o in net.outputs()]
        assert dist[0] == 0 and dist[1] == 1
        assert dist[2] == float("inf") and dist[3] == float("inf")
        assert net.metrics.faults["link_drops"] > 0

    def test_transient_link_failure_heals(self):
        # The failure window ends before node 1 gives up re-announcing?
        # Bellman-Ford announces once; a transient failure during that
        # single announcement permanently loses it -- seed with a second
        # chance by delaying the window start past the announcement.
        g = path_graph(4, w=1)
        plan = FaultPlan(link_failures=(LinkFailure(2, 3, start=1, end=1),))
        net = Network(g, bf_factory(), fault_plan=plan)
        net.run(max_rounds=50)
        dist = [o[0] for o in net.outputs()]
        # 2 learns d=2 in round 2 and announces in round 3 -- after the
        # window closed -- so 3 still converges.
        assert dist[3] == 3

    def test_crash_restart_omission_window(self):
        g = path_graph(3, w=1)  # 0 - 1 - 2
        # Node 1 is down exactly when node 0 announces (round 1); node 2
        # can then never learn a finite distance from the single
        # announcement.
        plan = FaultPlan(crashes=(CrashWindow(1, 1, 3),))
        net = Network(g, bf_factory(), fault_plan=plan)
        net.run(max_rounds=50)
        dist = [o[0] for o in net.outputs()]
        assert dist[1] == float("inf") and dist[2] == float("inf")
        assert net.metrics.faults["crash_recv_drops"] > 0

    def test_fault_stats_land_in_metrics(self):
        g = random_graph(8, p=0.5, w_max=4, seed=1)
        net = Network(g, bf_factory(),
                      fault_plan=FaultPlan(seed=2, drop_rate=0.5))
        m = net.run(max_rounds=100)
        assert m.faults["drops"] > 0
        assert sum(m.faults.values()) == m.faults["drops"]


class TestNetworkValidation:
    def test_rejects_empty_graph(self):
        class Empty:
            n = 0
            out_edges = in_edges = comm_neighbors = staticmethod(lambda v: [])
        with pytest.raises(ValueError, match="at least one node"):
            Network(Empty(), bf_factory())

    def test_rejects_bad_message_budget(self):
        g = random_graph(4, p=0.5, seed=0)
        with pytest.raises(ValueError, match="max_message_words"):
            Network(g, bf_factory(), max_message_words=0)

    def test_rejects_bad_channel_capacity(self):
        g = random_graph(4, p=0.5, seed=0)
        with pytest.raises(ValueError, match="channel_capacity"):
            Network(g, bf_factory(), channel_capacity=0)

    def test_rejects_negative_record_window(self):
        g = random_graph(4, p=0.5, seed=0)
        with pytest.raises(ValueError, match="record_window"):
            Network(g, bf_factory(), record_window=-1)

    def test_rejects_wrong_fault_plan_type(self):
        g = random_graph(4, p=0.5, seed=0)
        with pytest.raises(TypeError, match="FaultPlan"):
            Network(g, bf_factory(), fault_plan="drop everything")

    def test_multiplexer_validates_too(self):
        from repro.congest.scheduler import MultiplexedNetwork
        g = random_graph(4, p=0.5, seed=0)
        with pytest.raises(ValueError, match="channel_capacity"):
            MultiplexedNetwork(g, [bf_factory()], channel_capacity=0)
        with pytest.raises(ValueError, match="factory"):
            MultiplexedNetwork(g, [])

    def test_trivial_plan_uses_plain_path(self):
        g = random_graph(6, p=0.5, seed=0)
        net = Network(g, bf_factory(), fault_plan=FaultPlan())
        assert net.fault_injector is None

    def test_prebuilt_injector_accepted(self):
        g = random_graph(6, p=0.5, seed=0)
        inj = FaultInjector(FaultPlan(seed=1, drop_rate=0.5))
        net = Network(g, bf_factory(), fault_plan=inj)
        assert net.fault_injector is inj


class TestRunResumption:
    def test_rerun_after_quiescence_is_noop(self):
        g = random_graph(8, p=0.4, w_max=5, seed=2)
        net = Network(g, bf_factory())
        m1 = net.run(max_rounds=50)
        snapshot = (m1.rounds, m1.messages, m1.words, m1.active_rounds)
        m2 = net.run(max_rounds=50)
        assert m2 is m1  # same accumulating object
        assert (m2.rounds, m2.messages, m2.words,
                m2.active_rounds) == snapshot

    def test_resume_after_round_limit_continues_cleanly(self):
        g = path_graph(6, w=1)
        net = Network(g, bf_factory())
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=2)
        partial = net.metrics.messages
        # Resuming with a bigger absolute budget finishes the execution.
        net.run(max_rounds=50)
        assert net.metrics.messages > partial
        assert [o[0] for o in net.outputs()] == [0, 1, 2, 3, 4, 5]

        # The interrupted-and-resumed execution matches an uninterrupted
        # one exactly -- no double-counted rounds or messages.
        fresh = Network(g, bf_factory())
        fm = fresh.run(max_rounds=50)
        assert (net.metrics.rounds, net.metrics.messages,
                net.metrics.words) == (fm.rounds, fm.messages, fm.words)


class TestPostMortem:
    class NeverQuiet(BellmanFordProgram):
        """Announces every round forever -- guaranteed round-limit hit."""

        def on_send(self, ctx, r):
            ctx.broadcast_out((self.d if self.d != float("inf") else 10**6,))
            self._announce = r + 1

        def next_active_round(self, ctx, r):
            return r + 1

    def test_round_limit_carries_post_mortem(self):
        g = path_graph(3, w=1)
        net = Network(g, lambda v: self.NeverQuiet(v, source=0),
                      record_window=2)
        with pytest.raises(RoundLimitExceeded) as exc_info:
            net.run(max_rounds=6)
        exc = exc_info.value
        assert exc.post_mortem is not None
        assert exc.post_mortem.pending_sends  # every node still scheduled
        assert exc.post_mortem.recent_events  # flight recorder captured
        text = str(exc)
        assert "post-mortem" in text and "pending sends" in text

    def test_post_mortem_mentions_in_flight_envelopes(self):
        g = path_graph(3, w=1)
        plan = FaultPlan(seed=1, delay_rate=1.0, max_delay=30)
        net = Network(g, lambda v: BellmanFordProgram(v, source=0),
                      fault_plan=plan)
        with pytest.raises(RoundLimitExceeded) as exc_info:
            net.run(max_rounds=2)  # delayed traffic still in flight
        pm = exc_info.value.post_mortem
        assert pm.in_flight
        assert pm.fault_stats["delays"] > 0

    def test_no_record_window_hints_at_flag(self):
        g = path_graph(3, w=1)
        net = Network(g, lambda v: self.NeverQuiet(v, source=0))
        with pytest.raises(RoundLimitExceeded,
                           match="record_window"):
            net.run(max_rounds=4)


class TestRingTraceRecorder:
    def test_keeps_only_last_window_rounds(self):
        rec = RingTraceRecorder(window=2)
        for r in range(1, 6):
            rec.emit(r, 0, "send", r)
            rec.emit(r, 1, "recv", r)
        rounds = sorted({e.round for e in rec})
        assert rounds == [4, 5]
        assert len(rec) == 4

    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            RingTraceRecorder(0)

    def test_query_helpers_still_work(self):
        rec = RingTraceRecorder(window=3)
        rec.emit(1, 0, "send", "a")
        rec.emit(2, 1, "recv", "b")
        assert [e.kind for e in rec.of_kind("send")] == ["send"]
        assert set(rec.per_node()) == {0, 1}


class TestHighLevelFaultKwargs:
    def test_run_bellman_ford_accepts_fault_plan(self):
        g = random_graph(10, p=0.4, w_max=6, seed=4)
        res = run_bellman_ford(g, 0, fault_plan=FaultPlan(seed=1,
                                                          drop_rate=0.2))
        assert res.metrics.faults["drops"] > 0

    def test_pipelined_forwards_fault_plan(self):
        from repro.core import run_hk_ssp
        g = random_graph(8, p=0.4, w_max=4, seed=4)
        res = run_hk_ssp(g, [0], 3,
                         fault_plan=FaultPlan(seed=1, drop_rate=0.3))
        assert res.metrics.faults["drops"] > 0
