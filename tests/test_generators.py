"""Tests for the graph generators: determinism, connectivity, ranges."""

import pytest

from repro.graphs import (
    FIGURE1_HOP_BOUND,
    binary_tree_graph,
    bounded_distance_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    grid_graph,
    hop_limited_sssp,
    layered_graph,
    path_graph,
    random_graph,
    shortest_path_diameter,
    star_graph,
    zero_cluster_graph,
)


class TestRandomGraph:
    def test_deterministic_given_seed(self):
        g1 = random_graph(12, p=0.3, w_max=7, zero_fraction=0.4, seed=5)
        g2 = random_graph(12, p=0.3, w_max=7, zero_fraction=0.4, seed=5)
        assert list(g1.edges()) == list(g2.edges())

    def test_different_seeds_differ(self):
        g1 = random_graph(12, p=0.3, w_max=7, seed=1)
        g2 = random_graph(12, p=0.3, w_max=7, seed=2)
        assert list(g1.edges()) != list(g2.edges())

    @pytest.mark.parametrize("seed", range(8))
    def test_communication_connected(self, seed):
        g = random_graph(10, p=0.1, w_max=5, seed=seed)
        assert g.is_comm_connected()

    def test_weight_range_respected(self):
        g = random_graph(15, p=0.5, w_max=9, zero_fraction=0.0, seed=3)
        ws = [w for _, _, w in g.edges()]
        assert all(1 <= w <= 9 for w in ws)

    def test_zero_fraction_produces_zeros(self):
        g = random_graph(15, p=0.5, w_max=9, zero_fraction=0.9, seed=3)
        ws = [w for _, _, w in g.edges()]
        assert ws.count(0) > len(ws) // 2

    def test_w_max_zero_all_zero(self):
        g = random_graph(8, p=0.4, w_max=0, seed=1)
        assert all(w == 0 for _, _, w in g.edges())

    def test_undirected_symmetry(self):
        g = random_graph(10, p=0.3, w_max=5, directed=False, seed=7)
        for u, v, w in g.edges():
            assert g.weight(v, u) == w


class TestStructuredFamilies:
    def test_path(self):
        g = path_graph(4, w=2)
        assert g.m == 6  # undirected: 3 edges * 2 directions
        assert shortest_path_diameter(g) == 6

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.is_comm_connected()
        assert shortest_path_diameter(g) == 3

    def test_grid_dimensions(self):
        g = grid_graph(3, 4, w_max=1, seed=0)
        assert g.n == 12
        assert g.is_comm_connected()

    def test_complete(self):
        g = complete_graph(5, w_max=3, seed=1)
        assert g.m == 5 * 4  # both directions

    def test_star(self):
        g = star_graph(7)
        assert g.comm_neighbors(0) == tuple(range(1, 7))

    def test_binary_tree(self):
        g = binary_tree_graph(7, seed=2)
        assert g.is_comm_connected()

    def test_layered_connected(self):
        g = layered_graph(4, 3, seed=1)
        assert g.is_comm_connected()

    def test_zero_cluster_structure(self):
        g = zero_cluster_graph(3, 4, link_weight_max=5, seed=2)
        assert g.n == 12
        assert g.is_comm_connected()
        zero_edges = sum(1 for _, _, w in g.edges() if w == 0)
        assert zero_edges >= 3 * 4 * 2 - 2  # intra-cluster rings dominate

    def test_bounded_distance_respects_delta(self):
        for seed in range(5):
            delta = 10
            g = bounded_distance_graph(10, delta, seed=seed)
            assert shortest_path_diameter(g) <= delta


class TestFigure1:
    def test_phenomenon_present(self):
        """The h-hop shortest path to t and the h-hop shortest path to
        its parent a disagree: parent pointers are not an h-hop tree."""
        g = figure1_graph()
        h = FIGURE1_HOP_BOUND
        dist, hops = hop_limited_sssp(g, 0, h)
        # a (node 1) is best reached via b in 2 hops for weight 1
        assert dist[1] == 1 and hops[1] == 2
        # t (node 3) needs the 1-hop-to-a prefix: weight 2 in 2 hops
        assert dist[3] == 2 and hops[3] == 2
        # pointer chain t -> a -> b -> s would have 3 > h hops
        assert hops[1] + 1 > h


class TestAdversarialFamilies:
    def test_dumbbell(self):
        from repro.graphs import dumbbell_graph, eccentricity_bound
        g = dumbbell_graph(4, 5, seed=1)
        assert g.n == 13
        assert g.is_comm_connected()
        # the bar dominates the hop diameter
        assert eccentricity_bound(g) >= 5

    def test_broom(self):
        from repro.graphs import broom_graph
        g = broom_graph(6, 5, seed=2)
        assert g.n == 12
        assert g.is_comm_connected()
        hub = 6
        assert len(g.comm_neighbors(hub)) == 6  # 5 bristles + handle

    def test_caterpillar(self):
        from repro.graphs import caterpillar_graph
        g = caterpillar_graph(5, 3, seed=3)
        assert g.n == 20
        assert g.is_comm_connected()

    def test_heavy_tail(self):
        from repro.graphs import heavy_tail_graph
        g = heavy_tail_graph(14, seed=4)
        assert g.is_comm_connected()
        ws = sorted(w for _, _, w in g.edges())
        # heavy tail: median far below max
        assert ws[len(ws) // 2] * 4 <= max(ws[-1], 4)

    def test_new_families_deterministic(self):
        from repro.graphs import dumbbell_graph, heavy_tail_graph
        assert list(dumbbell_graph(3, 2, seed=9).edges()) == \
            list(dumbbell_graph(3, 2, seed=9).edges())
        assert list(heavy_tail_graph(8, seed=9).edges()) == \
            list(heavy_tail_graph(8, seed=9).edges())
