"""Golden regression tests: fixed graphs with frozen expected outputs.

These catch any silent behavioural drift in the distance algorithms or
the serialisation format -- the fixtures under tests/data/ are committed
and must keep producing byte-identical answers.
"""

import json
from pathlib import Path

import pytest

from repro.core import run_apsp, run_apsp_blocker
from repro.graphs import io as gio

DATA = Path(__file__).parent / "data"
CASES = sorted(p.stem.replace(".apsp", "")
               for p in DATA.glob("*.apsp.json"))


def load_case(name):
    g = gio.load(DATA / f"{name}.graph")
    mat = json.loads((DATA / f"{name}.apsp.json").read_text())
    expected = [[float("inf") if d is None else d for d in row]
                for row in mat]
    return g, expected


@pytest.mark.parametrize("name", CASES)
def test_golden_pipelined(name):
    g, expected = load_case(name)
    res = run_apsp(g)
    for x in range(g.n):
        assert res.dist[x] == expected[x], (name, x)


@pytest.mark.parametrize("name", CASES)
def test_golden_blocker(name):
    g, expected = load_case(name)
    res = run_apsp_blocker(g)
    for x in range(g.n):
        assert res.dist[x] == expected[x], (name, x)


def test_fixtures_present():
    assert len(CASES) >= 3


def load_metrics_fixture(name):
    return json.loads((DATA / f"{name}.metrics.json").read_text())


def metrics_summary(m):
    return {
        "rounds": m.rounds, "messages": m.messages, "words": m.words,
        "active_rounds": m.active_rounds,
        "max_edge_congestion": m.max_edge_congestion,
        "max_node_sends": m.max_node_sends,
    }


@pytest.mark.parametrize("name", CASES)
def test_golden_metrics_zero_overhead(name):
    """The fault layer must be invisible when disabled: the frozen round
    and message counts of the seed simulator are reproduced exactly,
    both with no fault arguments and with an explicitly trivial plan."""
    from repro.faults import FaultPlan

    g, _ = load_case(name)
    expected = load_metrics_fixture(name)

    res = run_apsp(g)
    assert metrics_summary(res.metrics) == expected["pipelined"], name
    assert dict(res.metrics.faults) == {}

    res_b = run_apsp_blocker(g)
    assert metrics_summary(res_b.metrics) == expected["blocker"], name

    # A trivial (all-zero) plan must take the identical delivery path.
    res_t = run_apsp(g, fault_plan=FaultPlan())
    assert metrics_summary(res_t.metrics) == expected["pipelined"], name
