"""Golden regression tests: fixed graphs with frozen expected outputs.

These catch any silent behavioural drift in the distance algorithms or
the serialisation format -- the fixtures under tests/data/ are committed
and must keep producing byte-identical answers.
"""

import json
from pathlib import Path

import pytest

from repro.core import run_apsp, run_apsp_blocker
from repro.graphs import io as gio

DATA = Path(__file__).parent / "data"
CASES = sorted(p.stem.replace(".apsp", "")
               for p in DATA.glob("*.apsp.json"))


def load_case(name):
    g = gio.load(DATA / f"{name}.graph")
    mat = json.loads((DATA / f"{name}.apsp.json").read_text())
    expected = [[float("inf") if d is None else d for d in row]
                for row in mat]
    return g, expected


@pytest.mark.parametrize("name", CASES)
def test_golden_pipelined(name):
    g, expected = load_case(name)
    res = run_apsp(g)
    for x in range(g.n):
        assert res.dist[x] == expected[x], (name, x)


@pytest.mark.parametrize("name", CASES)
def test_golden_blocker(name):
    g, expected = load_case(name)
    res = run_apsp_blocker(g)
    for x in range(g.n):
        assert res.dist[x] == expected[x], (name, x)


def test_fixtures_present():
    assert len(CASES) >= 3
