"""Tests for the h-hop oracles (scalar DP and vectorized matrix)."""

import random

import pytest

try:
    import numpy as np
except ImportError:  # the scalar-DP tests still run without numpy
    np = None

from repro.graphs import (
    WeightedDigraph,
    dijkstra,
    h_hop_distance_bound,
    hop_limited_apsp_matrix,
    hop_limited_k_source,
    hop_limited_sssp,
    hop_limited_sssp_exact_hops,
    random_graph,
)

INF = float("inf")


class TestScalarDP:
    def test_hop_zero_only_source(self):
        g = random_graph(5, p=0.5, w_max=3, seed=1)
        dist, hops = hop_limited_sssp(g, 2, 0)
        assert dist[2] == 0 and hops[2] == 0
        assert all(dist[v] == INF for v in range(5) if v != 2)

    def test_negative_hop_rejected(self):
        g = random_graph(3, p=0.5, w_max=3, seed=1)
        with pytest.raises(ValueError):
            hop_limited_sssp(g, 0, -1)

    def test_large_h_equals_dijkstra(self):
        for seed in range(10):
            g = random_graph(10, p=0.3, w_max=6, zero_fraction=0.4, seed=seed)
            want, _ = dijkstra(g, 0)
            got, _ = hop_limited_sssp(g, 0, g.n - 1)
            assert got == want

    def test_monotone_nonincreasing_in_h(self):
        g = random_graph(10, p=0.3, w_max=6, zero_fraction=0.3, seed=4)
        prev = None
        for h in range(g.n):
            cur, _ = hop_limited_sssp(g, 0, h)
            if prev is not None:
                assert all(c <= p for c, p in zip(cur, prev))
            prev = cur

    def test_hops_minimal_for_value(self):
        # dist via exactly-j-hop layers: hops[v] is the first j where the
        # final value is achieved
        g = WeightedDigraph.from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 2)])
        dist, hops = hop_limited_sssp(g, 0, 2)
        assert dist[2] == 2 and hops[2] == 1

    def test_exact_hop_layers(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        layers = hop_limited_sssp_exact_hops(g, 0, 2)
        assert layers[0] == [0, INF, INF]
        assert layers[1] == [INF, 2, INF]
        assert layers[2] == [INF, INF, 5]


@pytest.mark.skipif(np is None, reason="numpy not installed")
class TestVectorizedMatrix:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_dp(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng.randint(3, 12), p=0.35, w_max=5,
                         zero_fraction=0.4, seed=seed)
        h = rng.randint(0, g.n)
        mat = hop_limited_apsp_matrix(g, h)
        for s in range(g.n):
            want, _ = hop_limited_sssp(g, s, h)
            assert list(mat[s]) == want, (seed, s)

    def test_edgeless_graph(self):
        g = WeightedDigraph(4)
        mat = hop_limited_apsp_matrix(g, 3)
        assert np.isinf(mat).sum() == 12
        assert (np.diag(mat) == 0).all()

    def test_early_convergence(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 1), (1, 0, 1)])
        # h much larger than needed -- must still terminate and be exact
        mat = hop_limited_apsp_matrix(g, 50)
        assert mat[0][1] == 1 and mat[1][0] == 1


class TestHelpers:
    def test_k_source(self):
        g = random_graph(8, p=0.4, w_max=4, seed=3)
        res = hop_limited_k_source(g, [0, 5], 3)
        assert set(res) == {0, 5}
        assert res[0][0] == hop_limited_sssp(g, 0, 3)[0]

    def test_distance_bound(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 5), (1, 2, 6)])
        assert h_hop_distance_bound(g, [0], 1) == 5
        assert h_hop_distance_bound(g, [0], 2) == 11
        assert h_hop_distance_bound(g, [2], 2) == 0
