"""Tests for the execution inspector."""

from repro.analysis import (
    explain_pair,
    node_timeline,
    render_occupancy,
    schedule_occupancy,
    trace_run,
)
from repro.graphs import figure1_graph, random_graph


class TestExplainPair:
    def test_improvement_story_monotone(self):
        g = random_graph(10, p=0.35, w_max=5, zero_fraction=0.3, seed=2)
        story = explain_pair(g, 0, 7, g.n - 1)
        # (d, l) strictly improves lexicographically over time
        pairs = [(d, l) for _r, d, l, _p in story.improvements]
        assert pairs == sorted(pairs, reverse=True)
        assert len(set(pairs)) == len(pairs)
        if story.final:
            assert (story.final[0], story.final[1]) == pairs[-1]
        assert "pair 0 -> 7" in story.render()

    def test_unreachable_pair(self):
        from repro.graphs import WeightedDigraph
        g = WeightedDigraph.from_edges(2, [(0, 1, 3)])
        story = explain_pair(g, 1, 0, 1)
        assert story.final is None
        assert "never learned" in story.render()

    def test_figure1_story(self):
        g = figure1_graph()
        story = explain_pair(g, 0, 1, 3)
        # a first hears d=2 (direct), then improves to d=1 (via b)
        ds = [d for _r, d, _l, _p in story.improvements]
        assert ds[0] == 2 and ds[-1] == 1


class TestTimelines:
    def test_node_timeline_nonempty(self):
        g = random_graph(8, p=0.35, w_max=4, zero_fraction=0.3, seed=1)
        res, trace = trace_run(g, [0, 3], 4)
        lines = node_timeline(trace, 0)
        assert any("SEND" in l for l in lines)
        assert all(l.startswith("round") for l in lines)

    def test_schedule_occupancy_bounded_by_n(self):
        g = random_graph(9, p=0.35, w_max=4, zero_fraction=0.3, seed=4)
        res, trace = trace_run(g, list(range(9)), 8)
        occ = schedule_occupancy(trace)
        assert occ
        assert max(occ.values()) <= g.n  # one send per node per round
        out = render_occupancy(trace, g.n)
        assert "sends per round" in out
