"""Cross-algorithm integration tests: all implemented exact-APSP methods
must agree with each other and with Dijkstra on every graph family,
including the adversarial ones."""

import pytest

from repro.core import (
    run_apsp,
    run_apsp_blocker,
    run_bellman_ford_apsp,
    run_scaling_apsp,
)
from repro.graphs import (
    broom_graph,
    caterpillar_graph,
    dijkstra,
    dumbbell_graph,
    grid_graph,
    heavy_tail_graph,
    layered_graph,
    random_graph,
    zero_cluster_graph,
)

FAMILIES = {
    "random": lambda: random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=5),
    "zero_cluster": lambda: zero_cluster_graph(3, 4, seed=5),
    "grid": lambda: grid_graph(3, 4, w_max=5, zero_fraction=0.3, seed=5),
    "layered": lambda: layered_graph(4, 3, seed=5),
    "dumbbell": lambda: dumbbell_graph(4, 4, seed=5),
    "broom": lambda: broom_graph(6, 5, seed=5),
    "caterpillar": lambda: caterpillar_graph(4, 2, seed=5),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_all_exact_methods_agree(family):
    g = FAMILIES[family]()
    oracle = {x: dijkstra(g, x)[0] for x in range(g.n)}
    a1 = run_apsp(g)
    a3 = run_apsp_blocker(g)
    bf = run_bellman_ford_apsp(g)
    sc = run_scaling_apsp(g)
    for x in range(g.n):
        assert a1.dist[x] == oracle[x], ("pipelined", family, x)
        assert a3.dist[x] == oracle[x], ("blocker", family, x)
        assert bf.dist[x] == oracle[x], ("bellman-ford", family, x)
        assert sc.dist[x] == oracle[x], ("scaling", family, x)


def test_heavy_tail_distance_vs_weight_regimes():
    """On heavy-tailed weights the distance-bounded route (Theorem I.3's
    parametrisation) matters: Delta is far below n*W, so the Theorem I.1
    bound computed from the true Delta is much tighter than the
    weight-based worst case."""
    from repro import bounds
    from repro.graphs import shortest_path_diameter

    g = heavy_tail_graph(12, seed=7)
    delta = shortest_path_diameter(g)
    w = g.max_weight
    assert delta < (g.n - 1) * w / 4  # heavy tail: Delta << n*W
    res = run_apsp(g)
    assert res.metrics.rounds <= bounds.theorem11_apsp(g.n, delta)


def test_methods_agree_on_larger_instance():
    g = random_graph(24, p=0.2, w_max=7, zero_fraction=0.3, seed=11)
    oracle = {x: dijkstra(g, x)[0] for x in range(g.n)}
    a1 = run_apsp(g)
    a3 = run_apsp_blocker(g)
    for x in range(g.n):
        assert a1.dist[x] == oracle[x]
        assert a3.dist[x] == oracle[x]
