"""Tests for graph serialisation and networkx interchange."""

import pytest

from repro.graphs import GraphError, WeightedDigraph, random_graph
from repro.graphs import io as gio


class TestRoundTrip:
    def test_directed_roundtrip(self):
        g = random_graph(10, p=0.3, w_max=7, zero_fraction=0.3, seed=4)
        g2 = gio.loads(gio.dumps(g))
        assert g2.n == g.n and g2.directed == g.directed
        assert list(g2.edges()) == list(g.edges())

    def test_undirected_roundtrip(self):
        g = random_graph(8, p=0.3, w_max=7, directed=False, seed=4)
        text = gio.dumps(g)
        g2 = gio.loads(text)
        assert not g2.directed
        assert list(g2.edges()) == list(g.edges())
        # undirected dump emits each edge once
        assert sum(1 for ln in text.splitlines() if ln.startswith("e ")) == g.m // 2

    def test_file_roundtrip(self, tmp_path):
        g = random_graph(6, p=0.4, w_max=3, seed=1)
        path = tmp_path / "g.txt"
        gio.save(g, path)
        g2 = gio.load(path)
        assert list(g2.edges()) == list(g.edges())

    def test_comments_and_blank_lines(self):
        g = gio.loads("# hello\n\nn 2 directed\ne 0 1 5  # inline\n")
        assert g.weight(0, 1) == 5


class TestMalformedInput:
    @pytest.mark.parametrize("text,match", [
        ("e 0 1 5\n", "edge before"),
        ("n 2\n", "malformed 'n'"),
        ("n 2 directed\nn 2 directed\n", "duplicate"),
        ("n 2 directed\ne 0 1\n", "malformed 'e'"),
        ("n 2 directed\nz 1\n", "unknown record"),
        ("", "no 'n' record"),
        ("n 2 sideways\n", "malformed 'n'"),
    ])
    def test_errors(self, text, match):
        with pytest.raises(GraphError, match=match):
            gio.loads(text)


class TestNetworkx:
    def test_to_from_networkx(self):
        g = random_graph(9, p=0.3, w_max=5, zero_fraction=0.3, seed=2)
        nxg = gio.to_networkx(g)
        assert nxg.number_of_nodes() == 9
        g2 = gio.from_networkx(nxg)
        assert list(g2.edges()) == list(g.edges())

    def test_from_networkx_default_weight(self):
        import networkx as nx
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(2))
        nxg.add_edge(0, 1)  # no weight attr -> 1
        g = gio.from_networkx(nxg)
        assert g.weight(0, 1) == 1
