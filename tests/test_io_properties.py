"""Property-based round-trip tests for serialisation and conversions."""

from hypothesis import HealthCheck, given, settings

from repro.graphs import io as gio

from conftest import graph_instances

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=60, **COMMON)
@given(graph_instances())
def test_text_roundtrip(gi):
    g, _ = gi
    g2 = gio.loads(gio.dumps(g))
    assert g2.n == g.n
    assert g2.directed == g.directed
    assert list(g2.edges()) == list(g.edges())


@settings(max_examples=40, **COMMON)
@given(graph_instances())
def test_networkx_roundtrip(gi):
    g, _ = gi
    g2 = gio.from_networkx(gio.to_networkx(g))
    assert list(g2.edges()) == list(g.edges())


@settings(max_examples=40, **COMMON)
@given(graph_instances())
def test_double_roundtrip_fixpoint(gi):
    g, _ = gi
    once = gio.dumps(g)
    twice = gio.dumps(gio.loads(once))
    assert once == twice
