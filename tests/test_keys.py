"""Tests for the key schedule (gamma, kappa, send rounds)."""

import math

import pytest

from repro.core import (
    ceil_key,
    gamma_for,
    key_of,
    max_entries_per_source,
    send_round,
    theoretical_key_bound,
)


class TestGamma:
    def test_paper_formula(self):
        assert gamma_for(4, 9, 4) == math.sqrt(4 * 9 / 4)

    def test_gamma_one_when_hk_equals_delta(self):
        assert gamma_for(2, 2, 4) == 1.0

    @pytest.mark.parametrize("h,k,delta", [(0, 1, 1), (1, 0, 1), (1, 1, -1)])
    def test_invalid_inputs(self, h, k, delta):
        with pytest.raises(ValueError):
            gamma_for(h, k, delta)

    def test_delta_zero_gamma_exceeds_cutoff(self):
        """The degenerate stand-in must push any d >= 1 key past the
        Lemma II.14 cutoff h + k."""
        for h, k in [(1, 1), (5, 3), (10, 12)]:
            g = gamma_for(h, k, 0)
            assert key_of(1, 0, g) > h + k


class TestKeys:
    def test_key_blends_distance_and_hops(self):
        g = 2.0
        assert key_of(3, 4, g) == 10.0

    def test_key_deterministic_across_recomputation(self):
        g = gamma_for(7, 3, 11)
        assert key_of(5, 2, g) == key_of(5, 2, g)

    def test_crossing_an_edge_strictly_increases_key(self):
        g = gamma_for(5, 4, 9)
        for d, l, w in [(0, 0, 0), (3, 2, 0), (3, 2, 5)]:
            assert key_of(d + w, l + 1, g) >= key_of(d, l, g) + 1

    def test_ceil_key(self):
        assert ceil_key(3.0) == 3
        assert ceil_key(3.0001) == 4

    def test_send_round(self):
        assert send_round(2.5, 3) == 6
        assert send_round(3.0, 3) == 6


class TestBounds:
    def test_invariant2_bound(self):
        assert max_entries_per_source(4, 1, 4) == 5.0  # sqrt(16)+1

    def test_key_bound(self):
        # Delta*gamma + h with gamma = sqrt(hk/Delta) = sqrt(Delta h k) + h
        assert theoretical_key_bound(4, 4, 4) == pytest.approx(8 + 4)
