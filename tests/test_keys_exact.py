"""Exact-arithmetic validation of the floating-point key schedule.

Turns keys.py's numerical-soundness claim into a tested fact: over wide
random parameter ranges, the float implementation's orderings and
ceilings agree bit-for-bit with exact integer arithmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import gamma_for, key_of, send_round
from repro.core.keys_exact import (
    exact_ceil_key_plus,
    exact_compare_keys,
    float_matches_exact,
    gamma_squared,
)


class TestExactCompare:
    def test_equal_keys(self):
        assert exact_compare_keys(2, 3, 2, 3, 2, 1) == 0

    def test_rational_tie(self):
        # q = 4 (gamma = 2): d=1,l=2 gives 4; d=2,l=0 gives 4
        assert exact_compare_keys(1, 2, 2, 0, 4, 1) == 0

    def test_irrational_never_ties_mixed(self):
        # gamma = sqrt(2): 1*sqrt(2)+1 vs 0*sqrt(2)+2: sqrt(2) < 1? no
        assert exact_compare_keys(1, 1, 0, 2, 2, 1) == 1  # 2.41 > 2

    def test_negative_direction(self):
        assert exact_compare_keys(0, 1, 1, 1, 2, 1) == -1

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            exact_compare_keys(1, 1, 1, 1, 0, 1)


class TestExactCeil:
    def test_integer_gamma(self):
        # gamma = 2 (q = 4): ceil(3*2 + 1 + 2) = 9
        assert exact_ceil_key_plus(3, 1, 2, 4, 1) == 9

    def test_exact_boundary_not_rounded_up(self):
        # gamma = sqrt(4)/2 = 1 with q = 1: ceil(5 + 0 + 1) = 6 exactly
        assert exact_ceil_key_plus(5, 0, 1, 1, 1) == 6

    def test_irrational(self):
        # gamma = sqrt(2): ceil(1*1.414 + 0 + 1) = 3
        assert exact_ceil_key_plus(1, 0, 1, 2, 1) == 3

    def test_d_zero(self):
        assert exact_ceil_key_plus(0, 7, 3, 9999, 7) == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            exact_ceil_key_plus(-1, 0, 0, 1, 1)
        with pytest.raises(ValueError):
            exact_ceil_key_plus(1, 0, 0, 0, 1)


PARAMS = st.tuples(
    st.integers(min_value=1, max_value=256),    # h
    st.integers(min_value=1, max_value=256),    # k
    st.integers(min_value=1, max_value=4096),   # Delta
)


@settings(max_examples=300, deadline=None)
@given(PARAMS,
       st.integers(min_value=0, max_value=4096),
       st.integers(min_value=0, max_value=512),
       st.integers(min_value=0, max_value=4096),
       st.integers(min_value=0, max_value=512))
def test_float_ordering_matches_exact(params, d1, l1, d2, l2):
    h, k, delta = params
    assert float_matches_exact(d1, l1, d2, l2, h, k, delta)


@settings(max_examples=300, deadline=None)
@given(PARAMS,
       st.integers(min_value=0, max_value=4096),
       st.integers(min_value=0, max_value=512),
       st.integers(min_value=1, max_value=2048))
def test_float_ceil_matches_exact(params, d, l, pos):
    h, k, delta = params
    g = gamma_for(h, k, delta)
    got = send_round(key_of(d, l, g), pos)
    q_num, q_den = gamma_squared(h, k, delta)
    want = exact_ceil_key_plus(d, l, pos, q_num, q_den)
    assert got == want, (params, d, l, pos, got, want)


def test_exhaustive_small_range():
    """Brute-force agreement over a dense small grid (no sampling)."""
    for h in (1, 2, 3, 5):
        for k in (1, 2, 4):
            for delta in (1, 2, 3, 8):
                g = gamma_for(h, k, delta)
                q_num, q_den = gamma_squared(h, k, delta)
                for d in range(0, 12):
                    for l in range(0, 8):
                        for pos in (1, 2, 7):
                            got = send_round(key_of(d, l, g), pos)
                            want = exact_ceil_key_plus(d, l, pos, q_num, q_den)
                            assert got == want
