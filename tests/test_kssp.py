"""Tests for Algorithm 3 -- the blocker-set based k-SSP/APSP."""

import random

import pytest

from repro.core import run_apsp_blocker, run_kssp_blocker
from repro.graphs import (
    WeightedDigraph,
    dijkstra,
    grid_graph,
    random_graph,
    zero_cluster_graph,
)

INF = float("inf")


class TestExactness:
    @pytest.mark.parametrize("seed", range(12))
    def test_kssp_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        g = random_graph(n, p=0.35, w_max=6, zero_fraction=0.3, seed=seed)
        h = rng.randint(1, n)
        srcs = rng.sample(range(n), rng.randint(1, n))
        res = run_kssp_blocker(g, srcs, h)
        for x in res.sources:
            assert res.dist[x] == dijkstra(g, x)[0], (seed, x, h)

    @pytest.mark.parametrize("h", [1, 2, 4, 8])
    def test_exact_for_any_h(self, h):
        """Exactness must not depend on the choice of h (only rounds do)."""
        g = random_graph(10, p=0.35, w_max=5, zero_fraction=0.4, seed=3)
        res = run_apsp_blocker(g, h=h)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_default_h_from_theorem12(self):
        g = random_graph(9, p=0.35, w_max=4, zero_fraction=0.2, seed=1)
        res = run_apsp_blocker(g)
        assert 1 <= res.h <= g.n
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    @pytest.mark.parametrize("family", ["zero_cluster", "grid"])
    def test_families(self, family):
        g = {"zero_cluster": lambda: zero_cluster_graph(3, 4, seed=2),
             "grid": lambda: grid_graph(3, 3, w_max=4, zero_fraction=0.4,
                                        seed=5)}[family]()
        res = run_apsp_blocker(g, h=3)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_one_way_reachability(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        res = run_kssp_blocker(g, [0, 2], 2)
        assert res.dist[0] == [0, 2, 5]
        assert res.dist[2] == [INF, INF, 0]


class TestAccounting:
    def test_phase_rounds_sum_to_total(self):
        g = random_graph(9, p=0.35, w_max=5, zero_fraction=0.3, seed=4)
        res = run_kssp_blocker(g, [0, 2, 5], 3)
        top_level = ["csssp", "blocker_set", "blocker_sssp", "bfs_tree",
                     "broadcast"]
        assert res.metrics.rounds == sum(res.phase_rounds[k] for k in top_level)

    def test_keep_structures(self):
        g = random_graph(8, p=0.35, w_max=4, zero_fraction=0.3, seed=6)
        res = run_kssp_blocker(g, [0, 3], 2, keep_structures=True)
        assert res.csssp is not None
        assert res.blocker_result is not None
        assert res.blockers == res.blocker_result.blockers

    def test_empty_sources_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_kssp_blocker(g, [], 2)


class TestHTradeoff:
    def test_larger_h_fewer_blockers(self):
        """Larger h -> deeper trees get covered by CSSSP directly and
        blocker sets shrink (the Lemma III.2 trade-off's mechanism)."""
        g = random_graph(12, p=0.3, w_max=4, zero_fraction=0.3, seed=8)
        sizes = {}
        for h in (1, g.n // 2, g.n):
            res = run_apsp_blocker(g, h=h)
            sizes[h] = len(res.blockers)
        assert sizes[g.n] <= sizes[1]


class TestConcurrentSSSP:
    """Step 3 run on the FIFO multiplexer instead of sequentially."""

    @pytest.mark.parametrize("seed", range(8))
    def test_identical_output(self, seed):
        rng = random.Random(100 + seed)
        n = rng.randint(6, 14)
        g = random_graph(n, p=0.35, w_max=6, zero_fraction=0.3, seed=seed)
        h = rng.randint(1, max(2, n // 2))
        srcs = rng.sample(range(n), rng.randint(2, n))
        seq = run_kssp_blocker(g, srcs, h)
        con = run_kssp_blocker(g, srcs, h, concurrent_sssp=True)
        assert seq.dist == con.dist
        assert seq.blockers == con.blockers

    def test_concurrency_saves_rounds_with_many_blockers(self):
        g = random_graph(20, p=0.3, w_max=6, zero_fraction=0.3, seed=3)
        seq = run_kssp_blocker(g, range(20), 3)
        if len(seq.blockers) < 3:
            pytest.skip("instance produced too few blockers to matter")
        con = run_kssp_blocker(g, range(20), 3, concurrent_sssp=True)
        assert con.phase_rounds["blocker_sssp"] < \
            seq.phase_rounds["blocker_sssp"]
