"""Tests for the randomized sampled-blocker k-SSP."""

import random

import pytest

from repro.core import run_apsp_sampled, run_kssp_sampled
from repro.graphs import dijkstra, random_graph, zero_cluster_graph


class TestExactness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 13)
        g = random_graph(n, p=0.35, w_max=6, zero_fraction=0.3, seed=seed)
        h = rng.randint(1, n)
        srcs = rng.sample(range(n), rng.randint(1, n))
        res = run_kssp_sampled(g, srcs, h, seed=seed)
        for x in res.sources:
            assert res.dist[x] == dijkstra(g, x)[0], (seed, x, h)

    def test_deterministic_given_seed(self):
        g = random_graph(10, p=0.3, w_max=5, zero_fraction=0.3, seed=3)
        a = run_apsp_sampled(g, h=3, seed=77)
        b = run_apsp_sampled(g, h=3, seed=77)
        assert a.blockers == b.blockers
        assert a.metrics.rounds == b.metrics.rounds

    def test_zero_cluster(self):
        g = zero_cluster_graph(3, 4, seed=4)
        res = run_apsp_sampled(g, h=3, seed=1)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]


class TestSamplingBehaviour:
    def test_probability_formula(self):
        g = random_graph(12, p=0.3, w_max=4, zero_fraction=0.3, seed=5)
        res = run_apsp_sampled(g, h=4, seed=2, c=2.0)
        import math
        assert res.sample_probability == pytest.approx(
            min(1.0, 2.0 * math.log(12) / 4))

    def test_high_h_small_sample(self):
        """With h = n the trees are shallow relative to h: few depth-h
        paths, so even a tiny (or empty) sample covers them."""
        g = random_graph(12, p=0.35, w_max=4, zero_fraction=0.3, seed=6)
        res = run_apsp_sampled(g, h=g.n, seed=3, c=0.5)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_resamples_recorded(self):
        g = random_graph(10, p=0.3, w_max=5, zero_fraction=0.3, seed=7)
        res = run_apsp_sampled(g, h=3, seed=4)
        assert res.resamples >= 0

    def test_empty_sources_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_kssp_sampled(g, [], 2)
