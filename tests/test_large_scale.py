"""Large-scale validation: the headline algorithms at n = 48-64,
differential-tested against the vectorized oracle.

These are the biggest instances in the default suite (a few seconds
total); the REPRO_CAMPAIGN environment variable unlocks a much wider
randomized campaign for soak testing.
"""

import os
import random

import pytest

# Every test here validates against the vectorized numpy oracle
# (apsp_matrix); on a numpy-less interpreter (the CI fallback job) the
# scalar ground truths in test_hop_limited.py keep covering the DPs.
np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core import run_apsp, run_apsp_blocker, run_hk_ssp
from repro.graphs import apsp_matrix, random_graph
from repro.graphs.validation import assert_weak_h_hop_contract


def assert_matches_matrix(g, dist, rows=None):
    M = apsp_matrix(g)
    for x in rows if rows is not None else range(g.n):
        for v in range(g.n):
            want = M[x, v]
            got = dist[x][v]
            if np.isinf(want):
                assert got == float("inf"), (x, v)
            else:
                assert got == want, (x, v, got, want)


class TestVectorizedOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matrix_matches_dijkstra(self, seed):
        from repro.graphs import dijkstra
        g = random_graph(20, p=0.25, w_max=6, zero_fraction=0.3, seed=seed)
        M = apsp_matrix(g)
        for s in range(0, g.n, 5):
            want = dijkstra(g, s)[0]
            for v in range(g.n):
                if want[v] == float("inf"):
                    assert np.isinf(M[s, v])
                else:
                    assert M[s, v] == want[v]


class TestLargeScale:
    def test_apsp_n48(self):
        g = random_graph(48, p=0.12, w_max=6, zero_fraction=0.3, seed=7)
        res = run_apsp(g)
        assert_matches_matrix(g, res.dist)
        assert res.metrics.rounds <= res.round_bound

    def test_apsp_n64(self):
        g = random_graph(64, p=0.09, w_max=5, zero_fraction=0.3, seed=8)
        res = run_apsp(g)
        assert_matches_matrix(g, res.dist, rows=range(0, 64, 7))
        assert res.metrics.rounds <= res.round_bound

    def test_blocker_apsp_n40(self):
        g = random_graph(40, p=0.15, w_max=6, zero_fraction=0.3, seed=9)
        res = run_apsp_blocker(g)
        assert_matches_matrix(g, res.dist, rows=range(0, 40, 5))

    def test_hk_ssp_n48_contract(self):
        g = random_graph(48, p=0.12, w_max=6, zero_fraction=0.4, seed=10)
        srcs = list(range(0, 48, 6))
        res = run_hk_ssp(g, srcs, 10)
        assert_weak_h_hop_contract(g, res.dist, res.hops, 10)


@pytest.mark.skipif(not os.environ.get("REPRO_CAMPAIGN"),
                    reason="set REPRO_CAMPAIGN=1 for the wide soak campaign")
class TestCampaign:
    def test_500_seed_campaign(self):
        failures = []
        for seed in range(500):
            rng = random.Random(seed)
            n = rng.randint(4, 20)
            g = random_graph(n, p=rng.uniform(0.1, 0.5),
                             w_max=rng.choice([0, 1, 6, 50, 1000]),
                             zero_fraction=rng.choice([0.0, 0.3, 0.7]),
                             directed=rng.random() < 0.5, seed=seed)
            h = rng.randint(1, n)
            srcs = rng.sample(range(n), rng.randint(1, n))
            try:
                res = run_hk_ssp(g, srcs, h)
                assert_weak_h_hop_contract(g, res.dist, res.hops, h)
                assert res.last_sp_update_round <= res.round_bound
            except Exception as exc:  # noqa: BLE001 - campaign collector
                failures.append((seed, repr(exc)))
        assert not failures, failures[:5]
