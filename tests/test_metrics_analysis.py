"""Tests for RunMetrics accounting and the analysis harness."""

import pytest

from repro.analysis import (
    ExperimentReport,
    Measurement,
    format_value,
    render_markdown,
    render_report,
    render_table,
)
from repro.congest import RunMetrics, merge_sequential


class TestRunMetrics:
    def test_record_and_congestion(self):
        m = RunMetrics()
        m.record_message(0, 1, 3)
        m.record_message(0, 1, 2)
        m.record_message(1, 0, 5)
        assert m.messages == 3
        assert m.words == 10
        assert m.max_message_words == 5
        assert m.max_channel_congestion == 2
        assert m.max_edge_congestion == 3  # both directions summed

    def test_merge_sequential(self):
        a = RunMetrics()
        a.rounds = 5
        a.record_message(0, 1, 1)
        b = RunMetrics()
        b.rounds = 7
        b.record_message(0, 1, 4)
        c = merge_sequential(a, b)
        assert c.rounds == 12
        assert c.messages == 2
        assert c.max_message_words == 4
        assert c.channel_messages[(0, 1)] == 2

    def test_merge_with_none(self):
        a = RunMetrics()
        a.rounds = 3
        assert merge_sequential(None, a, None).rounds == 3

    def test_merge_rules_cover_every_field(self):
        """The merge is schema-driven: every dataclass field must have a
        rule, so adding a field without deciding how it composes fails
        loudly instead of silently dropping a counter."""
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(RunMetrics)}
        assert set(RunMetrics._MERGE_RULES) == field_names
        assert set(RunMetrics._MERGE_RULES.values()) <= {"add", "max"}

    def test_merge_is_field_complete(self):
        """Every field -- including the resilience and fault tallies the
        pre-schema merge could have forgotten -- composes correctly."""
        a = RunMetrics()
        a.rounds, a.active_rounds, a.skipped_rounds = 5, 4, 1
        a.retransmissions, a.ack_messages = 2, 3
        a.record_message(0, 1, 6)
        a.node_sends[0] += 1
        a.set_fault_stats({"drop": 2, "delay": 1})
        b = RunMetrics()
        b.rounds, b.active_rounds = 7, 7
        b.retransmissions, b.ack_messages = 10, 20
        b.record_message(0, 1, 2)
        b.record_message(1, 0, 3)
        b.node_sends[0] += 1
        b.node_sends[1] += 1
        b.set_fault_stats({"drop": 5})
        c = merge_sequential(a, b)
        assert (c.rounds, c.active_rounds, c.skipped_rounds) == (12, 11, 1)
        assert (c.retransmissions, c.ack_messages) == (12, 23)
        assert c.max_message_words == 6  # high-watermark: max, not sum
        assert c.channel_messages == {(0, 1): 2, (1, 0): 1}
        assert c.node_sends == {0: 2, 1: 1}
        assert c.faults == {"drop": 7, "delay": 1}
        # merging never mutates the inputs
        assert a.rounds == 5 and b.faults == {"drop": 5}

    def test_merge_rejects_unknown_rule_loudly(self):
        import dataclasses

        @dataclasses.dataclass
        class Broken(RunMetrics):
            extra_field: int = 0

        with pytest.raises(KeyError):
            Broken().merged_with(Broken())

    def test_empty_metrics(self):
        m = RunMetrics()
        assert m.max_channel_congestion == 0
        assert m.max_edge_congestion == 0
        assert m.max_node_sends == 0

    def test_summary_keys(self):
        m = RunMetrics()
        s = m.summary()
        assert "rounds" in s and "max_edge_congestion" in s


class TestMeasurement:
    def test_ratio_and_within(self):
        m = Measurement("E", {}, measured=8, bound=10)
        assert m.ratio == 0.8
        assert m.within_bound is True
        m2 = Measurement("E", {}, measured=12, bound=10)
        assert m2.within_bound is False
        m3 = Measurement("E", {}, measured=12)
        assert m3.within_bound is None and m3.ratio is None


class TestExperimentReport:
    def test_add_and_assert(self):
        rep = ExperimentReport("E0", "demo")
        rep.add({"n": 4}, measured=3, bound=5)
        rep.add({"n": 8}, measured=4, bound=5, note="hi")
        assert rep.all_within_bound
        assert rep.max_ratio == 0.8
        rep.assert_within_bounds()

    def test_assert_raises_with_details(self):
        rep = ExperimentReport("E0", "demo")
        rep.add({"n": 4}, measured=9, bound=5)
        with pytest.raises(AssertionError, match="exceed"):
            rep.assert_within_bounds()


class TestRendering:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(3.14159) == "3.14"
        assert format_value(float("nan")) == "-"
        assert format_value("x") == "x"

    def test_render_table_alignment(self):
        out = render_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # aligned

    def test_render_report_includes_all(self):
        rep = ExperimentReport("E9", "nine")
        rep.add({"n": 4}, measured=3, bound=5, extra_stat=7)
        out = render_report(rep)
        assert "E9" in out and "measured" in out and "extra_stat" in out
        assert "yes" in out

    def test_render_markdown(self):
        rep = ExperimentReport("E9", "nine")
        rep.add({"n": 4}, measured=3, bound=5)
        md = render_markdown(rep)
        assert md.startswith("| n |")
        assert "| 3 | 5 |" in md
