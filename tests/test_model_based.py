"""Model-based tests: the optimized implementations against naive
reference models, driven by hypothesis-generated operation sequences."""

import math
import random
from typing import List, Optional, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Entry, NodeList
from repro.core.keys import send_round


class NaiveList:
    """Brute-force reference for NodeList: a plain list re-sorted after
    every operation, with positions recomputed from scratch."""

    def __init__(self) -> None:
        self.items: List[Entry] = []

    def insert(self, e: Entry, budget: Optional[int]) -> Optional[Entry]:
        # stable placement above equal keys: sort by (key, arrival index)
        self.items.append(e)
        self.items.sort(key=lambda z: z.sort_key)
        # among equal sort keys keep arrival order (python sort is stable,
        # and the newcomer was appended last)
        removed = None
        same = [z for z in self.items if z.x == e.x]
        if budget is None or len(same) > budget:
            idx = self.items.index(e)
            for j in range(idx + 1, len(self.items)):
                z = self.items[j]
                if z.x == e.x and not z.flag_sp:
                    removed = z
                    self.items.remove(z)
                    break
        return removed

    def pos(self, e: Entry) -> int:
        return self.items.index(e) + 1

    def nu(self, e: Entry) -> int:
        i = self.items.index(e)
        return sum(1 for z in self.items[:i + 1] if z.x == e.x)

    def count_below(self, x: int, key) -> int:
        return sum(1 for z in self.items if z.x == x and z.sort_key <= key)

    def fire_at(self, r: int) -> Optional[Entry]:
        hits = [z for i, z in enumerate(self.items)
                if send_round(z.kappa, i + 1) == r]
        assert len(hits) <= 1
        return hits[0] if hits else None


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    budget = draw(st.sampled_from([None, 1, 2, 4]))
    gamma = draw(st.sampled_from([1.0, math.sqrt(2), 3.5]))
    return n_ops, seed, budget, gamma


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_sequences())
def test_node_list_matches_naive_model(ops):
    n_ops, seed, budget, gamma = ops
    rng = random.Random(seed)
    fast, slow = NodeList(), NaiveList()
    for step in range(n_ops):
        d = rng.randint(0, 8)
        l = rng.randint(0, 8)
        x = rng.randint(0, 3)
        kappa = d * gamma + l
        # entries must be distinct objects with identical data
        ef = Entry(kappa, d, l, x)
        es = Entry(kappa, d, l, x)
        _pos, removed_f = fast.insert(ef, budget)
        removed_s = slow.insert(es, budget)
        assert (removed_f is None) == (removed_s is None)
        if removed_f is not None:
            assert removed_f.sort_key == removed_s.sort_key

        # full structural agreement after every step
        assert [e.sort_key for e in fast] == [z.sort_key for z in slow.items]
        # spot-check queries
        if len(fast):
            probe = rng.choice(fast.entries())
            naive_twin = slow.items[fast.pos(probe) - 1]
            assert probe.sort_key == naive_twin.sort_key
            assert fast.nu_of(probe) == slow.nu(naive_twin)
            qx = rng.randint(0, 3)
            qkey = (rng.randint(0, 8) * gamma + rng.randint(0, 8),
                    rng.randint(0, 8), qx)
            assert fast.count_for_source_below(qx, qkey) == \
                slow.count_below(qx, qkey)
        r = rng.randint(1, 30)
        ff, sf = fast.fire_at(r), slow.fire_at(r)
        assert (ff is None) == (sf is None)
        if ff is not None:
            assert ff.sort_key == sf.sort_key
