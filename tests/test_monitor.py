"""Invariant monitoring: silent corruption becomes a located failure."""

import pytest

from repro.congest import Network
from repro.core.bellman_ford import BellmanFordProgram
from repro.core.pipelined import run_hk_ssp
from repro.faults import (
    DistanceMonotonicity,
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    distance_map,
    oracle_monitor,
    pipelined_invariants,
)
from repro.graphs import random_graph
from repro.graphs.reference import dijkstra


def bf_factory(source=0):
    return lambda v: BellmanFordProgram(v, source=source)


class TestDistanceMap:
    def test_reads_bellman_ford_scalar(self):
        p = BellmanFordProgram(0, source=0)
        assert distance_map(p) == {0: 0}

    def test_unknown_program_gives_none(self):
        class Opaque:
            pass
        assert distance_map(Opaque()) is None


class TestCleanRunsPass:
    def test_monitor_quiet_on_faultfree_bf(self):
        g = random_graph(10, p=0.4, w_max=6, seed=1)
        mon = oracle_monitor(g, [0])
        net = Network(g, bf_factory(), monitor=mon)
        net.run(max_rounds=50)
        assert mon.rounds_checked > 0

    def test_pipelined_invariants_hold_on_clean_run(self):
        g = random_graph(10, p=0.3, w_max=5, zero_fraction=0.3, seed=2)
        mon = InvariantMonitor(pipelined_invariants())
        res = run_hk_ssp(g, [0, 3, 6], 4, monitor=mon)
        assert res.metrics.rounds > 0
        assert mon.rounds_checked > 0

    def test_every_dial_reduces_checks(self):
        g = random_graph(10, p=0.4, w_max=6, seed=1)
        every = InvariantMonitor(every=3)
        net = Network(g, bf_factory(), monitor=every)
        net.run(max_rounds=50)
        dense = InvariantMonitor(every=1)
        net2 = Network(g, bf_factory(), monitor=dense)
        net2.run(max_rounds=50)
        assert every.rounds_checked < dense.rounds_checked

    def test_every_validated(self):
        with pytest.raises(ValueError, match="every"):
            InvariantMonitor(every=0)


class TestCorruptionCaught:
    """The acceptance test: inject corruption, assert the violation
    names the node, the round, and the invariant."""

    def test_oracle_monitor_catches_distance_lowering_corruption(self):
        g = random_graph(12, p=0.35, w_max=8, seed=7)
        plan = FaultPlan(seed=5, corrupt_rate=0.2)
        mon = oracle_monitor(g, [0])
        net = Network(g, bf_factory(), fault_plan=plan, monitor=mon,
                      record_window=3)
        with pytest.raises(InvariantViolation) as exc_info:
            net.run(max_rounds=100)
        exc = exc_info.value
        # The violation is fully located:
        assert exc.invariant == "distance-lower-bound"
        assert isinstance(exc.node, int) and 0 <= exc.node < g.n
        assert isinstance(exc.round, int) and exc.round >= 1
        # ... and says so in its message:
        text = str(exc)
        assert "distance-lower-bound" in text
        assert f"node {exc.node}" in text
        assert f"round {exc.round}" in text
        # ... and carries the post-mortem with the flight recording.
        assert exc.post_mortem is not None
        assert exc.post_mortem.fault_stats["corruptions"] > 0
        assert exc.post_mortem.recent_events

    def test_corrupted_estimate_really_undershoots(self):
        # The same run without a monitor silently produces estimates
        # below the true distances -- the failure mode the monitor turns
        # into a located exception above.
        g = random_graph(12, p=0.35, w_max=8, seed=7)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=5, corrupt_rate=0.2)
        net = Network(g, bf_factory(), fault_plan=plan)
        net.run(max_rounds=100)
        dist = [o[0] for o in net.outputs()]
        assert any(d < t for d, t in zip(dist, true))


class TestMonotonicity:
    class Backslider(BellmanFordProgram):
        """Deliberately raises its estimate after converging."""

        def on_receive(self, ctx, r, inbox):
            super().on_receive(ctx, r, inbox)
            if r == 3 and self.d not in (0, float("inf")):
                self.d += 5  # illegal: estimates may only improve

    def test_monotonicity_violation_detected(self):
        g = random_graph(10, p=0.5, w_max=4, seed=3)
        mon = InvariantMonitor([DistanceMonotonicity()])
        net = Network(g, lambda v: self.Backslider(v, source=0),
                      monitor=mon)
        with pytest.raises(InvariantViolation) as exc_info:
            net.run(max_rounds=50)
        assert exc_info.value.invariant == "distance-monotonicity"
        assert "increased" in exc_info.value.detail
