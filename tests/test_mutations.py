"""Mutation tests: deliberately sabotaged algorithm variants must be
caught by the library's runtime assertions or output validators.

This is the "do the safety nets actually catch anything" suite -- each
mutation removes one load-bearing mechanism identified in DESIGN.md
section 6 and asserts that some check trips on at least one instance of
a seed sweep.  If a mutation survives the whole sweep silently, the
corresponding invariant check has gone soft and this suite fails.
"""

import random

from repro.congest import Network
from repro.core.keys import gamma_for
from repro.core.pipelined import PipelinedSSPProgram, theorem11_round_bound
from repro.graphs import random_graph
from repro.graphs.reference import weak_delta_bound
from repro.graphs.validation import ValidationError, assert_weak_h_hop_contract

INF = float("inf")


def run_variant(cls, seed, *, cutoff=True):
    rng = random.Random(seed)
    n = rng.randint(6, 14)
    g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.4, seed=seed)
    h = rng.randint(2, n)
    srcs = tuple(rng.sample(range(n), rng.randint(2, n)))
    delta = weak_delta_bound(g, srcs, h)
    gamma = gamma_for(h, len(srcs), delta)
    bound = theorem11_round_bound(h, len(srcs), delta)
    net = Network(g, lambda v: cls(v, srcs, h, gamma,
                                   cutoff_round=bound if cutoff else None))
    net.run(max_rounds=100000)
    dist = {x: [INF] * n for x in srcs}
    hops = {x: [INF] * n for x in srcs}
    for v in range(n):
        for x, (d, l, p) in net.output_of(v).items():
            dist[x][v], hops[x][v] = d, l
    return g, dist, hops, h


def sweep_expect_failure(cls, *, seeds=range(30), cutoff=True):
    """Run the sabotaged variant over a sweep; return how many instances
    were caught (by assertion or by the output validator)."""
    caught = 0
    for seed in seeds:
        try:
            g, dist, hops, h = run_variant(cls, seed, cutoff=cutoff)
            assert_weak_h_hop_contract(g, dist, hops, h)
        except (AssertionError, ValidationError):
            caught += 1
    return caught


class NoPadding(PipelinedSSPProgram):
    """Mutation: drop the Step 13 quota padding entirely (never insert
    non-SP entries).  Receiver positions then lag sender positions and
    Invariant 1's runtime assertion must fire."""

    def on_receive(self, ctx, r, inbox):
        keep = []
        for env in inbox:
            d_in, l_in, x, flag_in, nu_in = env.payload
            keep.append(type(env)(src=env.src, dst=env.dst, round=env.round,
                                  payload=(d_in, l_in, x, flag_in, 0),
                                  words=env.words))
        super().on_receive(ctx, r, keep)


class EvictsSP(PipelinedSSPProgram):
    """Mutation: the flag-d* chain is not protected -- the freshly
    demoted *new* information is thrown away (keep the stale entry as
    SP).  Final distances go stale and the contract validator catches
    wrong guaranteed pairs."""

    def on_receive(self, ctx, r, inbox):
        for env in inbox:
            y = env.src
            w = ctx.weight_in(y)
            if w is None:
                continue
            d_in, l_in, x, _flag, nu_in = env.payload
            d, l = d_in + w, l_in + 1
            b = self.best[x]
            # sabotage: refuse improvements that beat the current best
            # by more than nothing -- i.e. drop every SP improvement
            # after the first.
            if b.beats(d, l, y) and b.d != INF:
                continue
            from repro.core.entries import Entry
            from repro.core.keys import key_of
            z = Entry(key_of(d, l, self.gamma), d, l, x, parent=y)
            if b.beats(d, l, y):
                z.flag_sp = True
                b.d, b.l, b.parent, b.entry = d, l, y, z
                self.list_v.insert_sp(z)
                if l <= self.h:
                    self.last_sp_update_round = r
            else:
                below = self.list_v.count_for_source_below(x, z.sort_key)
                if below < nu_in:
                    self.list_v.insert(z, self.budget)


class TooEagerCutoff(PipelinedSSPProgram):
    """Mutation: stop sending at half the Lemma II.14 cutoff.  Guaranteed
    outputs stop arriving and the contract validator catches it."""

    def on_send(self, ctx, r):
        if self.cutoff_round is not None and r > self.cutoff_round // 2:
            return
        super().on_send(ctx, r)


class TestMutationsAreCaught:
    def test_no_padding_trips_invariant1(self):
        caught = sweep_expect_failure(NoPadding)
        assert caught > 0, (
            "dropping the quota padding went unnoticed: Invariant 1's "
            "assertion has gone soft")

    def test_evicting_sp_chain_breaks_contract(self):
        caught = sweep_expect_failure(EvictsSP)
        assert caught > 0, (
            "freezing the flag-d* chain went unnoticed: the weak-contract "
            "validator has gone soft")

    def test_too_eager_cutoff_breaks_contract(self):
        caught = sweep_expect_failure(TooEagerCutoff)
        assert caught > 0, (
            "halving the cutoff went unnoticed: either Lemma II.14's "
            "bound is extremely loose on these instances or the "
            "validator has gone soft")

    def test_unmutated_variant_passes_same_sweep(self):
        """Control: the real algorithm passes the identical sweep."""
        caught = sweep_expect_failure(PipelinedSSPProgram)
        assert caught == 0
