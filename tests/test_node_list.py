"""Unit tests for the list_v data structure of Algorithm 1."""

import pytest

from repro.core import Entry, NodeList
from repro.core.keys import send_round


def E(kappa, d, l, x, *, sp=False, parent=None):
    return Entry(kappa, d, l, x, flag_sp=sp, parent=parent)


class TestOrdering:
    def test_sorted_by_kappa_d_x(self):
        nl = NodeList()
        e1 = E(5.0, 2, 1, 3)
        e2 = E(3.0, 1, 1, 1)
        e3 = E(5.0, 1, 3, 2)   # same kappa as e1, smaller d -> below
        for e in (e1, e2, e3):
            nl.insert(e)
        assert nl.entries() == [e2, e3, e1]
        assert nl.pos(e2) == 1 and nl.pos(e3) == 2 and nl.pos(e1) == 3

    def test_equal_sort_key_newcomer_goes_above(self):
        nl = NodeList()
        a = E(4.0, 2, 2, 7)
        b = E(4.0, 2, 2, 7)  # exact duplicate key
        nl.insert(a)
        nl.insert(b)
        assert nl.entries() == [a, b]
        assert nl.pos(b) == 2

    def test_pos_of_missing_entry_raises(self):
        nl = NodeList()
        with pytest.raises(ValueError):
            nl.pos(E(1.0, 1, 0, 0))


class TestCounts:
    def test_nu_counts_same_source_at_or_below(self):
        nl = NodeList()
        e1 = E(1.0, 1, 0, 5)
        e2 = E(2.0, 2, 0, 9)
        e3 = E(3.0, 3, 0, 5)
        for e in (e1, e2, e3):
            nl.insert(e)
        assert nl.nu_of(e1) == 1
        assert nl.nu_of(e3) == 2
        assert nl.nu_of(e2) == 1

    def test_count_for_source_below_includes_ties(self):
        nl = NodeList()
        nl.insert(E(2.0, 1, 1, 4))
        nl.insert(E(4.0, 2, 2, 4))
        assert nl.count_for_source_below(4, (2.0, 1, 4)) == 1  # tie counts
        assert nl.count_for_source_below(4, (3.0, 1, 4)) == 1
        assert nl.count_for_source_below(4, (9.0, 9, 9)) == 2
        assert nl.count_for_source_below(5, (9.0, 9, 9)) == 0

    def test_max_entries_any_source(self):
        nl = NodeList()
        for i in range(3):
            nl.insert(E(float(i), i, 0, 1))
        nl.insert(E(0.5, 0, 0, 2))
        assert nl.max_entries_any_source() == 3


class TestEviction:
    def test_budget_none_always_evicts_closest_nonsp_above(self):
        nl = NodeList()
        sp = E(5.0, 3, 1, 1, sp=True)
        non1 = E(6.0, 4, 1, 1)
        non2 = E(8.0, 5, 1, 1)
        for e in (sp, non1, non2):
            nl.insert_sp(e) if e.flag_sp else nl.insert(e, budget=None)
        # non1 evicted non-SP above when non2 was inserted? order: sp,
        # non1 (evicts nothing above), non2 (evicts nothing above).
        newcomer = E(5.5, 3, 2, 1)
        pos, removed = nl.insert(newcomer, budget=None)
        assert removed is non1  # closest non-SP above
        assert pos == 2

    def test_sp_flag_protects_from_eviction(self):
        nl = NodeList()
        sp = E(6.0, 3, 1, 1, sp=True)
        nl.insert_sp(sp)
        newcomer = E(5.0, 2, 3, 1)
        _, removed = nl.insert(newcomer, budget=None)
        assert removed is None  # only non-SP entries above are victims

    def test_budget_respected_no_eviction_below_budget(self):
        nl = NodeList()
        nl.insert(E(1.0, 1, 0, 1), budget=3)
        nl.insert(E(2.0, 2, 0, 1), budget=3)
        _, removed = nl.insert(E(0.5, 0, 1, 1), budget=3)
        assert removed is None
        assert len(nl) == 3

    def test_budget_exceeded_triggers_eviction(self):
        nl = NodeList()
        a = E(1.0, 1, 0, 1)
        b = E(2.0, 2, 0, 1)
        nl.insert(a, budget=2)
        nl.insert(b, budget=2)
        _, removed = nl.insert(E(0.5, 0, 1, 1), budget=2)
        assert removed is a  # closest non-SP above the newcomer

    def test_eviction_only_same_source(self):
        nl = NodeList()
        other = E(2.0, 2, 0, 9)
        nl.insert(other, budget=None)
        _, removed = nl.insert(E(1.0, 1, 0, 1), budget=None)
        assert removed is None

    def test_evict_over_budget_method(self):
        nl = NodeList()
        sp = E(1.0, 0, 1, 1, sp=True)
        old = E(2.0, 1, 1, 1)
        nl.insert_sp(sp)
        nl.insert(old, budget=None)
        assert nl.evict_over_budget(sp, budget=2) is None
        assert nl.evict_over_budget(sp, budget=1) is old
        assert len(nl) == 1

    def test_remove_by_identity(self):
        nl = NodeList()
        a = E(1.0, 1, 0, 1)
        b = E(1.0, 1, 0, 1)
        nl.insert(a)
        nl.insert(b)
        nl.remove(a)
        assert nl.entries() == [b]


class TestSendSchedule:
    def test_fire_at_returns_scheduled_entry(self):
        nl = NodeList()
        e1 = E(1.5, 1, 1, 1)   # pos 1 -> fires ceil(2.5) = 3
        e2 = E(4.0, 2, 2, 2)   # pos 2 -> fires 6
        nl.insert(e1)
        nl.insert(e2)
        assert nl.fire_at(3) is e1
        assert nl.fire_at(6) is e2
        assert nl.fire_at(4) is None

    def test_at_most_one_fire_per_round(self):
        """Sortedness + distinct positions make the schedule collision
        free (DESIGN.md sec. 6); build a dense list and check every round."""
        nl = NodeList()
        import random
        rng = random.Random(7)
        gamma = 1.4142135623730951
        for i in range(40):
            d = rng.randint(0, 10)
            l = rng.randint(0, 10)
            nl.insert(E(d * gamma + l, d, l, rng.randint(0, 5)))
        for r in range(1, 80):
            nl.fire_at(r)  # raises AssertionError on collision

    def test_next_fire_after(self):
        nl = NodeList()
        e1 = E(1.5, 1, 1, 1)
        nl.insert(e1)
        assert nl.next_fire_after(0) == send_round(1.5, 1)
        assert nl.next_fire_after(send_round(1.5, 1)) is None
