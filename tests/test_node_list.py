"""Unit tests for the list_v data structure of Algorithm 1.

Every test runs against BOTH kernels -- the indexed ``NodeList`` and the
naive ``ReferenceNodeList`` -- via the ``Kernel`` fixture: the two must
be observably identical (the Hypothesis trace suite in
test_node_list_kernels.py pins the same claim at scale).
"""

import pytest

from repro.core import Entry, NodeList, ReferenceNodeList
from repro.core.keys import send_round


@pytest.fixture(params=["indexed", "reference"])
def Kernel(request):
    return {"indexed": NodeList, "reference": ReferenceNodeList}[request.param]


def E(kappa, d, l, x, *, sp=False, parent=None):
    return Entry(kappa, d, l, x, flag_sp=sp, parent=parent)


class TestOrdering:
    def test_sorted_by_kappa_d_x(self, Kernel):
        nl = Kernel()
        e1 = E(5.0, 2, 1, 3)
        e2 = E(3.0, 1, 1, 1)
        e3 = E(5.0, 1, 3, 2)   # same kappa as e1, smaller d -> below
        for e in (e1, e2, e3):
            nl.insert(e)
        assert nl.entries() == [e2, e3, e1]
        assert nl.pos(e2) == 1 and nl.pos(e3) == 2 and nl.pos(e1) == 3

    def test_equal_sort_key_newcomer_goes_above(self, Kernel):
        nl = Kernel()
        a = E(4.0, 2, 2, 7)
        b = E(4.0, 2, 2, 7)  # exact duplicate key
        nl.insert(a)
        nl.insert(b)
        assert nl.entries() == [a, b]
        assert nl.pos(b) == 2

    def test_pos_of_missing_entry_raises(self, Kernel):
        nl = Kernel()
        with pytest.raises(ValueError):
            nl.pos(E(1.0, 1, 0, 0))


class TestCounts:
    def test_nu_counts_same_source_at_or_below(self, Kernel):
        nl = Kernel()
        e1 = E(1.0, 1, 0, 5)
        e2 = E(2.0, 2, 0, 9)
        e3 = E(3.0, 3, 0, 5)
        for e in (e1, e2, e3):
            nl.insert(e)
        assert nl.nu_of(e1) == 1
        assert nl.nu_of(e3) == 2
        assert nl.nu_of(e2) == 1

    def test_count_for_source_below_includes_ties(self, Kernel):
        nl = Kernel()
        nl.insert(E(2.0, 1, 1, 4))
        nl.insert(E(4.0, 2, 2, 4))
        assert nl.count_for_source_below(4, (2.0, 1, 4)) == 1  # tie counts
        assert nl.count_for_source_below(4, (3.0, 1, 4)) == 1
        assert nl.count_for_source_below(4, (9.0, 9, 9)) == 2
        assert nl.count_for_source_below(5, (9.0, 9, 9)) == 0

    def test_max_entries_any_source(self, Kernel):
        nl = Kernel()
        for i in range(3):
            nl.insert(E(float(i), i, 0, 1))
        nl.insert(E(0.5, 0, 0, 2))
        assert nl.max_entries_any_source() == 3


class TestEviction:
    def test_budget_none_always_evicts_closest_nonsp_above(self, Kernel):
        nl = Kernel()
        sp = E(5.0, 3, 1, 1, sp=True)
        non1 = E(6.0, 4, 1, 1)
        non2 = E(8.0, 5, 1, 1)
        for e in (sp, non1, non2):
            nl.insert_sp(e) if e.flag_sp else nl.insert(e, budget=None)
        # non1 evicted non-SP above when non2 was inserted? order: sp,
        # non1 (evicts nothing above), non2 (evicts nothing above).
        newcomer = E(5.5, 3, 2, 1)
        pos, removed = nl.insert(newcomer, budget=None)
        assert removed is non1  # closest non-SP above
        assert pos == 2

    def test_sp_flag_protects_from_eviction(self, Kernel):
        nl = Kernel()
        sp = E(6.0, 3, 1, 1, sp=True)
        nl.insert_sp(sp)
        newcomer = E(5.0, 2, 3, 1)
        _, removed = nl.insert(newcomer, budget=None)
        assert removed is None  # only non-SP entries above are victims

    def test_budget_respected_no_eviction_below_budget(self, Kernel):
        nl = Kernel()
        nl.insert(E(1.0, 1, 0, 1), budget=3)
        nl.insert(E(2.0, 2, 0, 1), budget=3)
        _, removed = nl.insert(E(0.5, 0, 1, 1), budget=3)
        assert removed is None
        assert len(nl) == 3

    def test_budget_exceeded_triggers_eviction(self, Kernel):
        nl = Kernel()
        a = E(1.0, 1, 0, 1)
        b = E(2.0, 2, 0, 1)
        nl.insert(a, budget=2)
        nl.insert(b, budget=2)
        _, removed = nl.insert(E(0.5, 0, 1, 1), budget=2)
        assert removed is a  # closest non-SP above the newcomer

    def test_eviction_only_same_source(self, Kernel):
        nl = Kernel()
        other = E(2.0, 2, 0, 9)
        nl.insert(other, budget=None)
        _, removed = nl.insert(E(1.0, 1, 0, 1), budget=None)
        assert removed is None

    def test_evict_over_budget_method(self, Kernel):
        nl = Kernel()
        sp = E(1.0, 0, 1, 1, sp=True)
        old = E(2.0, 1, 1, 1)
        nl.insert_sp(sp)
        nl.insert(old, budget=None)
        assert nl.evict_over_budget(sp, budget=2) is None
        assert nl.evict_over_budget(sp, budget=1) is old
        assert len(nl) == 1

    def test_remove_by_identity(self, Kernel):
        nl = Kernel()
        a = E(1.0, 1, 0, 1)
        b = E(1.0, 1, 0, 1)
        nl.insert(a)
        nl.insert(b)
        nl.remove(a)
        assert nl.entries() == [b]


class TestSendSchedule:
    def test_fire_at_returns_scheduled_entry(self, Kernel):
        nl = Kernel()
        e1 = E(1.5, 1, 1, 1)   # pos 1 -> fires ceil(2.5) = 3
        e2 = E(4.0, 2, 2, 2)   # pos 2 -> fires 6
        nl.insert(e1)
        nl.insert(e2)
        assert nl.fire_at(3) is e1
        assert nl.fire_at(6) is e2
        assert nl.fire_at(4) is None

    def test_at_most_one_fire_per_round(self, Kernel):
        """Sortedness + distinct positions make the schedule collision
        free (DESIGN.md sec. 6); build a dense list and check every round."""
        nl = Kernel()
        import random
        rng = random.Random(7)
        gamma = 1.4142135623730951
        for i in range(40):
            d = rng.randint(0, 10)
            l = rng.randint(0, 10)
            nl.insert(E(d * gamma + l, d, l, rng.randint(0, 5)))
        for r in range(1, 80):
            nl.fire_at(r)  # raises AssertionError on collision

    def test_next_fire_after(self, Kernel):
        nl = Kernel()
        e1 = E(1.5, 1, 1, 1)
        nl.insert(e1)
        assert nl.next_fire_after(0) == send_round(1.5, 1)
        assert nl.next_fire_after(send_round(1.5, 1)) is None

class TestEdgeSemantics:
    """The corner cases the kernel rewrite must not bend (ISSUE 5)."""

    def test_empty_list_fire_and_next(self, Kernel):
        nl = Kernel()
        assert nl.fire_at(1) is None
        assert nl.fire_at(10 ** 9) is None
        assert nl.next_fire_after(0) is None
        assert nl.next_fire_after(10 ** 9) is None

    def test_equal_key_run_positions_and_nu(self, Kernel):
        # a run of exact duplicates: newcomers stack above, pos/nu must
        # stay per-entry exact (the ReferenceNodeList pos degrades to a
        # linear walk here; the kernel's identity index must agree)
        nl = Kernel()
        run = [E(4.0, 2, 2, 7) for _ in range(6)]
        for e in run:
            nl.insert(e)
        for i, e in enumerate(run):
            assert nl.pos(e) == i + 1
            assert nl.nu_of(e) == i + 1
        below = E(1.0, 1, 0, 3)
        nl.insert(below)
        for i, e in enumerate(run):
            assert nl.pos(e) == i + 2
            assert nl.nu_of(e) == i + 1

    def test_budget_none_vs_budget_eviction(self, Kernel):
        # literal (budget=None) eviction fires on every insert; the
        # budget-triggered policy only past the allowance
        for budget, expect_evict in ((None, True), (3, False), (1, True)):
            nl = Kernel()
            a = E(1.0, 1, 0, 1)
            b = E(3.0, 3, 0, 1)
            nl.insert(a, budget=budget)
            nl.insert(b, budget=budget)
            _, removed = nl.insert(E(2.0, 2, 0, 1), budget=budget)
            assert (removed is b) == expect_evict

    def test_insert_sp_then_evict_over_budget_interplay(self, Kernel):
        # the Steps 9-11 dance: insert_sp never evicts on its own; the
        # follow-up evict_over_budget call takes the old entry only when
        # the budget demands it, and only once demoted to non-SP
        nl = Kernel()
        old = E(5.0, 3, 1, 1, sp=True)
        pad = E(7.0, 4, 1, 1)
        nl.insert_sp(old)
        nl.insert(pad, budget=None)
        new = E(4.0, 2, 4, 1, sp=True)
        assert nl.insert_sp(new) == 1
        assert len(nl) == 3  # no eviction yet
        old.flag_sp = False
        assert nl.evict_over_budget(new, budget=3) is None
        victim = nl.evict_over_budget(new, budget=2)
        assert victim is old  # closest non-SP above the new SP entry
        assert nl.entries() == [new, pad]

    def test_remove_within_equal_key_run_keeps_identity(self, Kernel):
        nl = Kernel()
        run = [E(2.0, 1, 1, 4) for _ in range(4)]
        for e in run:
            nl.insert(e)
        nl.remove(run[1])
        assert nl.entries() == [run[0], run[2], run[3]]
        assert [nl.pos(e) for e in (run[0], run[2], run[3])] == [1, 2, 3]
        with pytest.raises(ValueError):
            nl.pos(run[1])

    def test_max_entries_tracks_eviction_and_removal(self, Kernel):
        nl = Kernel()
        ones = [E(float(i), i, 0, 1) for i in range(3)]
        for e in ones:
            nl.insert(e)
        nl.insert(E(0.5, 0, 0, 2))
        assert nl.max_entries_any_source() == 3
        nl.remove(ones[2])
        assert nl.max_entries_any_source() == 2
        nl.remove(ones[0])
        nl.remove(ones[1])
        assert nl.max_entries_any_source() == 1
        nl.remove(nl.entries()[0])
        assert nl.max_entries_any_source() == 0
