"""Differential suite for the node-state kernels (ISSUE 5).

Replays Hypothesis-generated operation traces -- inserts with every
eviction policy, SP promotions with demote + evict_over_budget, identity
removals, and the full query surface (pos/nu/count/fire) -- against both
the indexed :class:`~repro.core.node_list.NodeList` and the naive
:class:`~repro.core.node_list.ReferenceNodeList`, asserting observable
equality after every step: entry sequences, 1-based positions, nu
counts, eviction victims, fire rounds, and the incremental max.

Twin entries: each operation creates one Entry per list (same data,
distinct objects) so identity-based semantics (remove, eviction victims)
are exercised on both sides independently.

Also covers the REPRO_PARANOID debug mode: a paranoid run over a full
trace must be silent, and a deliberately corrupted kernel index must be
*caught* by the paranoid cross-checks (that the checks can fail is the
test that they check anything).
"""

import math
import random
from typing import List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Entry, NodeList, ReferenceNodeList, set_paranoid
from repro.core import node_list as nl_mod


def _twin_pair(rng: random.Random, gamma: float, n_sources: int
               ) -> Tuple[Entry, Entry]:
    d = rng.randint(0, 8)
    l = rng.randint(0, 8)
    x = rng.randint(0, n_sources - 1)
    kappa = d * gamma + l
    return Entry(kappa, d, l, x), Entry(kappa, d, l, x)


def _assert_equal_state(fast: NodeList, slow: ReferenceNodeList,
                        live: List[Tuple[Entry, Entry]]) -> None:
    assert len(fast) == len(slow)
    assert [e.sort_key for e in fast] == [e.sort_key for e in slow]
    assert fast.max_entries_any_source() == slow.max_entries_any_source()
    for ef, es in live:
        assert fast.pos(ef) == slow.pos(es)
        assert fast.nu_of(ef) == slow.nu_of(es)
        assert fast.count_for_source(ef.x) == slow.count_for_source(es.x)


def _drop_pair(live: List[Tuple[Entry, Entry]],
               removed_f: Optional[Entry], removed_s: Optional[Entry]) -> None:
    assert (removed_f is None) == (removed_s is None)
    if removed_f is None:
        return
    for i, (ef, es) in enumerate(live):
        if ef is removed_f:
            # the victims must be the *same* resident, not merely
            # key-equal entries
            assert es is removed_s
            del live[i]
            return
    raise AssertionError("evicted entry was not a resident twin")


def _run_trace(n_ops: int, seed: int, gamma: float, n_sources: int,
               fast=None, slow=None) -> Tuple[NodeList, ReferenceNodeList]:
    rng = random.Random(seed)
    fast = NodeList() if fast is None else fast
    slow = ReferenceNodeList() if slow is None else slow
    live: List[Tuple[Entry, Entry]] = []
    for _step in range(n_ops):
        op = rng.random()
        if op < 0.55 or not live:
            # plain insert under a randomly chosen eviction policy
            budget = rng.choice([None, 1, 2, 4])
            ef, es = _twin_pair(rng, gamma, n_sources)
            pos_f, rem_f = fast.insert(ef, budget)
            pos_s, rem_s = slow.insert(es, budget)
            assert pos_f == pos_s
            live.append((ef, es))
            _drop_pair(live, rem_f, rem_s)
        elif op < 0.75:
            # SP promotion: insert_sp, demote a random old same-source
            # SP twin if any, then evict_over_budget (Steps 9-11)
            ef, es = _twin_pair(rng, gamma, n_sources)
            ef.flag_sp = es.flag_sp = True
            assert fast.insert_sp(ef) == slow.insert_sp(es)
            live.append((ef, es))
            for of, os_ in live:
                if of is not ef and of.x == ef.x and of.flag_sp:
                    of.flag_sp = os_.flag_sp = False
                    break
            budget = rng.choice([1, 2, 4])
            _drop_pair(live, fast.evict_over_budget(ef, budget),
                       slow.evict_over_budget(es, budget))
        elif op < 0.85:
            ef, es = live[rng.randrange(len(live))]
            fast.remove(ef)
            slow.remove(es)
            live.remove((ef, es))
        else:
            # query-only step: the send schedule
            r = rng.randint(1, 40)
            ff, sf = fast.fire_at(r), slow.fire_at(r)
            assert (ff is None) == (sf is None)
            if ff is not None:
                assert fast.pos(ff) == slow.pos(sf)
                assert ff.sort_key == sf.sort_key
            assert fast.next_fire_after(r) == slow.next_fire_after(r)
        # spot probes every step
        if live:
            ef, es = live[rng.randrange(len(live))]
            assert fast.pos(ef) == slow.pos(es)
            assert fast.nu_of(ef) == slow.nu_of(es)
            qx = rng.randint(0, n_sources - 1)
            qkey = (rng.randint(0, 8) * gamma + rng.randint(0, 8),
                    rng.randint(0, 8), qx)
            assert fast.count_for_source_below(qx, qkey) == \
                slow.count_for_source_below(qx, qkey)
        assert fast.max_entries_any_source() == slow.max_entries_any_source()
    _assert_equal_state(fast, slow, live)
    for r in range(1, 60):
        ff, sf = fast.fire_at(r), slow.fire_at(r)
        assert (ff is None) == (sf is None)
        assert fast.next_fire_after(r) == slow.next_fire_after(r)
    return fast, slow


@st.composite
def traces(draw):
    return (draw(st.integers(min_value=1, max_value=60)),
            draw(st.integers(min_value=0, max_value=10 ** 6)),
            draw(st.sampled_from([1.0, math.sqrt(2), 3.5, 0.25])),
            draw(st.sampled_from([1, 2, 4, 8])))


@settings(max_examples=220, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(traces())
def test_kernel_matches_reference_over_traces(trace):
    """>= 200 Hypothesis traces: the acceptance-criterion pin."""
    n_ops, seed, gamma, n_sources = trace
    _run_trace(n_ops, seed, gamma, n_sources)


def test_kernel_matches_reference_long_trace():
    """One long deterministic trace (deeper than Hypothesis' examples)."""
    _run_trace(2000, seed=20, gamma=math.sqrt(2), n_sources=6)


def test_duplicate_key_storm():
    """Heavy exact-duplicate traffic: the regime where the old pos()
    degraded to O(n) and where per-source tie handling must exactly
    mirror the global bisect_right placement."""
    fast, slow = NodeList(), ReferenceNodeList()
    live = []
    for i in range(120):
        x = i % 3
        ef, es = Entry(2.0, 1, 1, x), Entry(2.0, 1, 1, x)
        pf, rf = fast.insert(ef, 10 ** 9)
        ps, rs = slow.insert(es, 10 ** 9)
        assert pf == ps and rf is None and rs is None
        live.append((ef, es))
    rng = random.Random(1)
    rng.shuffle(live)
    for ef, es in live[:60]:
        fast.remove(ef)
        slow.remove(es)
    rest = live[60:]
    _assert_equal_state(fast, slow, rest)


def test_paranoid_mode_silent_on_correct_kernel():
    prev = set_paranoid(True)
    try:
        _run_trace(300, seed=11, gamma=1.0, n_sources=3)
    finally:
        set_paranoid(prev)


def test_paranoid_mode_catches_corrupted_index():
    """Corrupt each internal index in turn; every paranoid query family
    must trip an AssertionError -- proof the cross-checks check."""
    def fresh():
        nl = NodeList()
        for i in range(8):
            nl.insert(Entry(float(i), i, 0, i % 2), budget=None)
        return nl

    prev = set_paranoid(True)
    try:
        nl = fresh()
        nl._max_count += 1  # desync the count histogram
        with pytest.raises(AssertionError):
            nl.max_entries_any_source()

        nl = fresh()
        e = nl.entries()[3]
        nl._keys[2], nl._keys[3] = nl._keys[3], nl._keys[2]  # unsort keys
        with pytest.raises(AssertionError):
            nl.pos(e)

        nl = fresh()
        e = nl.entries()[0]
        e._li = 1  # break the identity index
        with pytest.raises((AssertionError, ValueError)):
            nl.nu_of(e)
    finally:
        set_paranoid(prev)


def test_paranoid_fire_at_asserts_at_most_one_send():
    """The reference fire_at (and paranoid kernel fire_at) must reject a
    hand-built list violating the at-most-one-send property.  Such a
    list cannot arise from sorted inserts -- build it by hand."""
    slow = ReferenceNodeList()
    a, b = Entry(1.2, 1, 0, 0), Entry(0.4, 0, 1, 1)
    slow._entries = [a, b]  # unsorted: both fire in round ceil at 3
    slow._keys = [a.sort_key, b.sort_key]
    assert math.ceil(a.kappa + 1) == math.ceil(b.kappa + 2) == 3
    with pytest.raises(AssertionError):
        slow.fire_at(3)

    prev = set_paranoid(True)
    try:
        fast = NodeList()
        fast._entries = [a, b]
        fast._keys = [a.sort_key, b.sort_key]
        with pytest.raises(AssertionError):
            fast.fire_at(3)
    finally:
        set_paranoid(prev)


def test_module_flag_reads_environment(tmp_path):
    """REPRO_PARANOID=1 in the environment seeds the module flag."""
    import subprocess
    import sys
    import os
    code = ("import repro.core.node_list as m; "
            "print(m.PARANOID)")
    env = dict(os.environ, REPRO_PARANOID="1",
               PYTHONPATH=os.pathsep.join(["src"] +
                                          os.environ.get("PYTHONPATH", "").split(os.pathsep)))
    out = subprocess.run([sys.executable, "-c", code], env=env, cwd=".",
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == "True"
    assert nl_mod.PARANOID in (True, False)
