"""End-to-end observability: tracing/metrics attached to real algorithm
runs, the dashboard cross-check, profiling hooks, and the ``repro obs``
CLI.  Also pins the passivity guarantee -- attaching observability must
not change a single metric of the simulated execution."""

import io

import pytest

from repro.core import apsp, run_apsp, run_kssp_blocker
from repro.graphs import random_graph
from repro.obs import (
    MetricsRegistry,
    ProfileSession,
    Tracer,
    check_phases,
    load_jsonl,
    phase_rounds,
    render_dashboard,
    run_metrics_view,
)
from repro.obs.profiling import HOT


@pytest.fixture
def g():
    return random_graph(12, p=0.35, w_max=6, zero_fraction=0.3, seed=5)


class TestTracedRuns:
    def test_pipelined_apsp_phases_match_metrics(self, g):
        tracer, reg = Tracer(), MetricsRegistry()
        res = run_apsp(g, tracer=tracer, registry=reg)
        ok, traced, total = check_phases(tracer, res.metrics)
        assert ok and traced == total == res.metrics.rounds
        assert phase_rounds(tracer) == {"pipelined": res.metrics.rounds}
        assert run_metrics_view(reg) == res.metrics
        kinds = tracer.kind_counts()
        assert kinds["net.send"] == res.metrics.messages
        assert "promote" in kinds and "insert" in kinds

    def test_blocker_kssp_phase_spans(self, g):
        tracer, reg = Tracer(), MetricsRegistry()
        res = run_kssp_blocker(g, [0, 3, 7], tracer=tracer, registry=reg)
        ok, traced, total = check_phases(tracer, res.metrics)
        assert ok, (traced, total)
        tops = [s.name for s in tracer.phases()]
        assert tops[:2] == ["csssp", "blocker-set"]
        assert {"blocker-sssp", "bfs-tree", "broadcast"} <= set(tops)
        # nested spans (pipelined inside csssp) don't distort the sum
        assert any(s.parent_id is not None for s in tracer.spans)
        assert len(tracer.of_kind("blocker.elect")) == len(res.blockers)
        assert run_metrics_view(reg) == res.metrics

    def test_traced_faulty_run_records_fault_events(self, g):
        from repro.core.bellman_ford import run_bellman_ford
        from repro.faults import FaultPlan

        tracer = Tracer()
        run_bellman_ford(g, 0, fault_plan=FaultPlan(seed=2, drop_rate=0.3),
                         tracer=tracer)
        faults = tracer.of_kind("fault")
        assert faults and all(e.data[0] == "drop" for e in faults)


class TestPassivity:
    def test_attaching_obs_does_not_change_the_run(self, g):
        """Observation is passive: every RunMetrics field is identical
        with and without the full observability stack attached."""
        bare = run_apsp(g)
        with ProfileSession():
            observed = run_apsp(g, tracer=Tracer(),
                                registry=MetricsRegistry())
        assert observed.metrics == bare.metrics
        assert observed.dist == bare.dist

    def test_hot_is_off_by_default(self):
        assert HOT.session is None


class TestProfiling:
    def test_hot_loops_report_timers(self, g):
        with ProfileSession() as prof:
            run_apsp(g)
        names = set(prof.timers)
        assert {"network.round", "node.send_many",
                "node_list.fire_at", "node_list.next_fire_after"} <= names
        assert prof.wall_seconds > 0
        assert "network.round" in prof.report()
        assert HOT.session is None  # deactivated on exit

    def test_sessions_do_not_nest(self):
        with ProfileSession():
            with pytest.raises(RuntimeError):
                with ProfileSession():
                    pass
        assert HOT.session is None

    def test_cprofile_capture(self, g):
        with ProfileSession(cprofile=True) as prof:
            run_apsp(g)
        assert "function calls" in prof.stats_text()


class TestDashboard:
    def test_render_full(self, g):
        tracer, reg = Tracer(), MetricsRegistry()
        with ProfileSession() as prof:
            res = run_apsp(g, tracer=tracer, registry=reg)
        text = render_dashboard(tracer=tracer, registry=reg,
                                metrics=res.metrics, profile=prof)
        assert "== run metrics ==" in text
        assert "pipelined" in text and "MATCH" in text
        assert "congest.rounds" in text
        assert "congest.round_wall_s" in text
        assert "network.round" in text

    def test_render_empty(self):
        assert render_dashboard() == "(nothing to show)"


class TestObsCLI:
    def _write_graph(self, tmp_path, g):
        from repro.graphs import io as gio
        path = tmp_path / "g.graph"
        gio.save(g, path)
        return str(path)

    def test_obs_run_exports_trace_and_matches(self, tmp_path, g):
        from repro.cli import main

        gpath = self._write_graph(tmp_path, g)
        tpath = tmp_path / "trace.jsonl"
        out = io.StringIO()
        rc = main(["obs", "run", gpath, "--method", "pipelined",
                   "--export-trace", str(tpath)], out)
        assert rc == 0
        text = out.getvalue()
        assert "MATCH" in text and "MISMATCH" not in text
        recs = load_jsonl(tpath)
        assert recs[0]["type"] == "trace"
        spans = [r for r in recs if r.get("type") == "span"]
        events = [r for r in recs if r.get("type") == "event"]
        assert spans and events
        # the exported per-phase rounds agree with the dashboard's claim
        res = apsp(g, method="pipelined")
        total = sum(s["attrs"]["rounds"] for s in spans
                    if s["parent"] is None and "rounds" in s["attrs"])
        assert total == res.metrics.rounds

    def test_obs_bench_and_diff_regression_exit_codes(self, tmp_path,
                                                      monkeypatch):
        import repro.cli as cli
        from repro.analysis import ExperimentReport
        from repro.obs import BenchStore

        rounds = {"value": 10}

        def fake_suite(jobs=1, backend=None):
            rep = ExperimentReport("EX", "fake")
            rep.add({"n": 8}, measured=rounds["value"])
            return [rep]

        monkeypatch.setattr(cli, "_obs_smoke_reports", fake_suite)
        store = str(tmp_path)
        assert cli.main(["obs", "bench", "--store", store,
                         "--name", "base"], io.StringIO()) == 0
        # identical run: clean
        assert cli.main(["obs", "bench", "--store", store, "--name", "cur",
                         "--baseline", "base"], io.StringIO()) == 0
        # +20% rounds: regression -> non-zero exit code
        rounds["value"] = 12
        out = io.StringIO()
        rc = cli.main(["obs", "bench", "--store", store, "--name", "bad",
                       "--baseline", "base", "--tolerance", "0.1"], out)
        assert rc == 1 and "REGRESSED" in out.getvalue()
        # obs diff agrees, both ways
        assert cli.main(["obs", "diff", "base", "cur", "--store", store],
                        io.StringIO()) == 0
        assert cli.main(["obs", "diff", "base", "bad", "--store", store],
                        io.StringIO()) == 1
        assert BenchStore(store).names() == ["bad", "base", "cur"]
