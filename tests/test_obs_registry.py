"""Tests for repro.obs.registry: instruments, the RunMetrics mirror,
and delta-based publishing across sequential phases."""

import pytest

from repro.congest import Network, RunMetrics, merge_sequential
from repro.graphs import random_graph
from repro.obs import MetricsRegistry, publish_run_metrics, run_metrics_view
from repro.obs.registry import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        c.set_total(9)
        with pytest.raises(ValueError):
            c.set_total(8)

    def test_gauge_set_and_max(self):
        g = Gauge("x")
        g.set(5)
        g.max(3)
        assert g.value == 5
        g.max(8)
        assert g.value == 8

    def test_histogram_buckets(self):
        h = Histogram("x")
        h.observe(1)    # <= scale -> bucket 0
        h.observe(3)    # (2, 4]   -> bucket 2
        h.observe(3)
        assert h.count == 3 and h.total == 7
        assert (h.min, h.max) == (1, 3)
        assert h.mean == pytest.approx(7 / 3)
        assert h.nonzero_buckets() == [(0, 1), (2, 2)]

    def test_histogram_scale(self):
        h = Histogram("t", scale=1e-6)
        h.observe(3e-6)  # 3 microseconds -> bucket 2, same as observe(3)/scale 1
        assert h.nonzero_buckets() == [(2, 1)]

    def test_labels_distinguish_streams(self):
        reg = MetricsRegistry()
        reg.counter("sends", node=0).inc(2)
        reg.counter("sends", node=1).inc(3)
        assert reg.counter("sends", node=0).value == 2
        assert reg.counter_total("sends") == 5
        snap = reg.snapshot()
        assert snap["counters"] == {"sends{node=0}": 2, "sends{node=1}": 3}

    def test_create_on_first_use_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")


def _metrics(rounds, *, msgs=(), faults=None):
    m = RunMetrics()
    m.rounds = rounds
    m.active_rounds = rounds
    for (src, dst, words) in msgs:
        m.record_message(src, dst, words)
        m.node_sends[src] += 1
    if faults:
        m.set_fault_stats(faults)
    return m


class TestPublish:
    def test_round_trip_view(self):
        m = _metrics(7, msgs=[(0, 1, 3), (0, 1, 2), (2, 0, 5)],
                     faults={"drop": 2})
        m.retransmissions = 4
        m.ack_messages = 6
        m.skipped_rounds = 1
        reg = MetricsRegistry()
        publish_run_metrics(reg, m)
        view = run_metrics_view(reg)
        assert view == m

    def test_republish_is_idempotent(self):
        """Re-publishing the same metrics with the returned state adds
        zero -- a resumed Network.run cannot double-count."""
        m = _metrics(5, msgs=[(0, 1, 2)])
        reg = MetricsRegistry()
        state = publish_run_metrics(reg, m)
        publish_run_metrics(reg, m, state=state)
        assert run_metrics_view(reg) == m

    def test_growing_metrics_publish_delta_only(self):
        m = _metrics(5, msgs=[(0, 1, 2)])
        reg = MetricsRegistry()
        state = publish_run_metrics(reg, m)
        m.rounds = 9
        m.record_message(0, 1, 4)
        publish_run_metrics(reg, m, state=state)
        assert run_metrics_view(reg) == m

    def test_sequential_phases_accumulate_like_merge(self):
        """Two phases publishing fresh metrics into one shared registry
        must read back as their merge_sequential."""
        a = _metrics(5, msgs=[(0, 1, 2), (1, 2, 7)], faults={"drop": 1})
        b = _metrics(3, msgs=[(0, 1, 4)], faults={"delay": 2})
        reg = MetricsRegistry()
        publish_run_metrics(reg, a)  # independent publishers: no shared state
        publish_run_metrics(reg, b)
        assert run_metrics_view(reg) == merge_sequential(a, b)

    def test_prefix_isolation(self):
        a, b = _metrics(4), _metrics(6)
        reg = MetricsRegistry()
        publish_run_metrics(reg, a, prefix="congest")
        publish_run_metrics(reg, b, prefix="mux")
        assert run_metrics_view(reg, prefix="congest").rounds == 4
        assert run_metrics_view(reg, prefix="mux").rounds == 6


class TestNetworkPublishes:
    def test_network_run_mirrors_into_registry(self):
        from repro.core.bellman_ford import BellmanFordProgram

        g = random_graph(10, p=0.3, w_max=5, seed=3)
        reg = MetricsRegistry()
        net = Network(g, lambda v: BellmanFordProgram(v, 0), registry=reg)
        m = net.run(max_rounds=60)
        assert run_metrics_view(reg) == m
        # the per-round wall-clock histogram saw every active round
        [hist] = reg.histograms("congest.round_wall_s")
        assert hist.count == m.active_rounds
