"""Tests for repro.obs.store: BENCH_*.json persistence and the
regression comparison that CI's bench-smoke job keys off."""

import json

import pytest

from repro.analysis import ExperimentReport
from repro.obs import BenchStore, write_last_run_reports
from repro.obs.store import BenchRecord, render_record_reports


def make_reports(rounds_e1=(10, 20), rounds_e2=30):
    r1 = ExperimentReport("E1", "first experiment")
    for seed, rounds in enumerate(rounds_e1):
        r1.add({"seed": seed, "n": 8}, measured=rounds, bound=rounds * 2,
               worst=float("inf"))
    r2 = ExperimentReport("E2", "second experiment")
    r2.add({"n": 12}, measured=rounds_e2, bound=None)
    return [r1, r2]


class TestBenchRecord:
    def test_reports_round_trip(self):
        rec = BenchRecord.from_reports("x", make_reports(), created="t0")
        back = rec.to_reports()
        assert [r.experiment for r in back] == ["E1", "E2"]
        assert back[0].rows[0].measured == 10
        assert back[0].rows[0].extra["worst"] == float("inf")

    def test_row_index_keys_on_experiment_and_params(self):
        rec = BenchRecord.from_reports("x", make_reports())
        idx = rec.row_index()
        assert len(idx) == 3
        key = ("E1", json.dumps({"n": 8, "seed": 0}, sort_keys=True))
        assert idx[key]["measured"] == 10


class TestBenchStore:
    def test_save_load_round_trip(self, tmp_path):
        store = BenchStore(tmp_path)
        path = store.save("run1", make_reports())
        assert path == tmp_path / "BENCH_run1.json"
        assert store.exists("run1") and store.names() == ["run1"]
        rec = store.load("run1")
        assert rec.name == "run1"
        # non-finite floats survive the JSON encoding
        assert rec.rows[0]["extra"]["worst"] == float("inf")
        data = json.loads(path.read_text())
        assert data["format"] == 1

    def test_name_validation(self, tmp_path):
        store = BenchStore(tmp_path)
        with pytest.raises(ValueError):
            store.path_for("../evil")

    def test_identical_runs_diff_clean(self, tmp_path):
        """The acceptance criterion: two identical runs produce a clean
        comparison with exit code 0."""
        store = BenchStore(tmp_path)
        store.save("a", make_reports())
        store.save("b", make_reports())
        rep = store.compare("a", "b")
        assert not rep.regressions and not rep.improvements
        assert rep.exit_code == 0
        assert "clean" in rep.render()

    def test_20_percent_regression_detected(self, tmp_path):
        """The acceptance criterion: a +20% round count regresses past
        the default 10% tolerance and the exit code goes non-zero."""
        store = BenchStore(tmp_path)
        store.save("base", make_reports(rounds_e1=(10, 20)))
        store.save("cur", make_reports(rounds_e1=(12, 20)))  # 10 -> 12: +20%
        rep = store.compare("base", "cur", tolerance=0.1)
        assert len(rep.regressions) == 1
        assert rep.exit_code != 0
        [delta] = rep.regressions
        assert delta.experiment == "E1" and delta.ratio == pytest.approx(1.2)
        assert "REGRESSED" in rep.render()

    def test_within_tolerance_is_clean(self, tmp_path):
        store = BenchStore(tmp_path)
        store.save("base", make_reports(rounds_e2=30))
        store.save("cur", make_reports(rounds_e2=32))  # +6.7% < 10%
        assert store.compare("base", "cur").exit_code == 0

    def test_improvement_is_not_a_regression(self, tmp_path):
        store = BenchStore(tmp_path)
        store.save("base", make_reports(rounds_e2=30))
        store.save("cur", make_reports(rounds_e2=20))
        rep = store.compare("base", "cur")
        assert rep.exit_code == 0 and len(rep.improvements) == 1

    def test_per_experiment_tolerances(self, tmp_path):
        store = BenchStore(tmp_path)
        store.save("base", make_reports(rounds_e2=30))
        store.save("cur", make_reports(rounds_e2=32))
        rep = store.compare("base", "cur", tolerances={"E2": 0.0})
        assert rep.exit_code != 0

    def test_added_and_removed_rows_never_fail(self, tmp_path):
        store = BenchStore(tmp_path)
        store.save("base", make_reports())
        extra = make_reports()
        extra[0].add({"seed": 9, "n": 8}, measured=5)
        store.save("cur", extra)
        rep = store.compare("base", "cur")
        assert rep.only_in_current and rep.exit_code == 0
        assert store.compare("cur", "base").only_in_baseline

    def test_missing_record_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            BenchStore(tmp_path).load("nope")


class TestLastRunReports:
    def test_writes_store_and_derived_text(self, tmp_path):
        out = write_last_run_reports(make_reports(), tmp_path)
        assert out == tmp_path / "last_run_reports.txt"
        store = BenchStore(tmp_path)
        assert store.exists("last_run")
        # the text is *derived from the stored record*: one rendering path
        assert out.read_text() == render_record_reports(store.load("last_run"))
        assert "E1" in out.read_text() and "E2" in out.read_text()


class TestAtomicWrites:
    def test_interrupted_save_never_corrupts_existing_record(
            self, tmp_path, monkeypatch):
        """A save that dies mid-write (here: os.replace refused) leaves
        the previous BENCH_*.json bytes untouched and no temp litter --
        a killed benchmark run must never truncate the record a later
        ``repro bench --baseline`` diff depends on."""
        import repro.obs.store as store_mod

        store = BenchStore(tmp_path)
        good = store.save("run", make_reports(), created="pinned")
        before = good.read_bytes()

        def refuse(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(store_mod.os, "replace", refuse)
        with pytest.raises(OSError, match="disk full"):
            store.save("run", make_reports(rounds_e2=99), created="pinned")
        monkeypatch.undo()
        assert good.read_bytes() == before          # old record intact
        assert store.load("run").rows               # and still parseable
        assert not list(tmp_path.glob("*.tmp*"))    # temp file cleaned up

    def test_half_written_temp_file_is_invisible(self, tmp_path):
        """A temp file left by a killed writer (no cleanup ran) is not a
        record: names() skips it and load() never sees it."""
        store = BenchStore(tmp_path)
        store.save("real", make_reports())
        (tmp_path / "BENCH_ghost.json.tmp4242").write_text('{"name": "gho')
        assert store.names() == ["real"]
        assert not store.exists("ghost")
        with pytest.raises(FileNotFoundError):
            store.load("ghost")

    def test_atomic_write_text_replaces_in_one_step(self, tmp_path):
        from repro.obs.store import atomic_write_text

        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]
