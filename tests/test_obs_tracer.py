"""Tests for repro.obs.tracer: span hierarchy, bounded event buffering,
and the JSONL export round-trip."""

import pytest

from repro.congest.events import TraceRecorder
from repro.obs import Tracer, load_jsonl


class TestSpans:
    def test_nesting_and_phases(self):
        t = Tracer()
        with t.span("outer", h=3) as outer:
            assert t.current_span is outer
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert t.current_span is inner
            with t.span("inner2"):
                pass
        assert t.current_span is None
        assert [s.name for s in t.phases()] == ["outer"]
        assert [s.name for s in t.spans] == ["outer", "inner", "inner2"]

    def test_attrs_and_wall_time(self):
        t = Tracer()
        with t.span("phase", k=7) as sp:
            sp.set(rounds=42)
        assert sp.attrs == {"k": 7, "rounds": 42}
        assert sp.wall_seconds is not None and sp.wall_seconds >= 0

    def test_exception_marks_span_failed(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("doomed"):
                raise RuntimeError("boom")
        assert t.spans[0].attrs["failed"] is True
        assert t.current_span is None  # stack unwound

    def test_span_cap_counts_drops(self):
        t = Tracer(max_spans=2)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.spans) == 2
        assert t.dropped_spans == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestEvents:
    def test_is_a_trace_recorder(self):
        """Tracer must be usable wherever the simulator takes a
        TraceRecorder (run_hk_ssp(trace=...), program emits)."""
        t = Tracer()
        assert isinstance(t, TraceRecorder)
        t.emit(3, 1, "send", 2, 5)
        [e] = t.of_kind("send")
        assert (e.round, e.node, e.data) == (3, 1, (2, 5))

    def test_kind_counts(self):
        t = Tracer()
        for r in range(4):
            t.emit(r, 0, "tick")
        t.emit(9, 0, "tock")
        assert t.kind_counts() == {"tick": 4, "tock": 1}

    def test_structured_event_sorted_fields(self):
        t = Tracer()
        t.event("fault", round=7, node=2, peer=5, kind2="drop")
        [e] = t.events
        assert e.kind == "fault"
        assert e.data == (("kind2", "drop"), ("peer", 5))

    def test_ring_eviction_bounded_and_counted(self):
        t = Tracer(max_events=64)
        for i in range(1000):
            t.emit(i, 0, "e", i)
        assert len(t.events) <= 64
        assert t.dropped == 1000 - len(t.events)
        # the *newest* events are the ones retained
        assert t.events[-1].data == (999,)

    def test_events_record_innermost_span(self):
        t = Tracer()
        t.emit(1, 0, "outside")
        with t.span("a") as sa:
            t.emit(2, 0, "in-a")
            with t.span("b") as sb:
                t.emit(3, 0, "in-b")
        events = [r for r in t.records() if r["type"] == "event"]
        spans_of = {r["kind"]: r["span"] for r in events}
        assert spans_of == {"outside": None, "in-a": sa.span_id,
                            "in-b": sb.span_id}


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("phase", h=2) as sp:
            t.emit(1, 4, "send", 5, float("inf"))
            sp.set(rounds=9)
        path = tmp_path / "trace.jsonl"
        count = t.export_jsonl(path)
        recs = load_jsonl(path)
        assert len(recs) == count == 3  # header + 1 span + 1 event
        header, span, event = recs
        assert header["type"] == "trace"
        assert header == {"type": "trace", "events": 1, "spans": 1,
                          "dropped_events": 0, "dropped_spans": 0}
        assert span["type"] == "span" and span["name"] == "phase"
        assert span["attrs"] == {"h": 2, "rounds": 9}
        assert event["type"] == "event" and event["kind"] == "send"
        assert event["data"] == [5, "inf"]  # inf survives as a string
        assert event["span"] == span["id"]

    def test_header_reports_drops(self, tmp_path):
        t = Tracer(max_events=8)
        for i in range(100):
            t.emit(i, 0, "e")
        path = tmp_path / "t.jsonl"
        t.export_jsonl(path)
        header = load_jsonl(path)[0]
        assert header["dropped_events"] == t.dropped > 0
        assert header["events"] == len(t.events)
