"""Tests for Algorithm 1 -- the pipelined (h, k)-SSP algorithm."""

import random

import pytest

from repro.congest import TraceRecorder
from repro.core import (
    gamma_for,
    max_entries_per_source,
    run_apsp,
    run_hk_ssp,
    run_k_ssp,
    theorem11_round_bound,
)
from repro.graphs import (
    FIGURE1_HOP_BOUND,
    WeightedDigraph,
    dijkstra,
    dijkstra_min_hops,
    figure1_graph,
    grid_graph,
    layered_graph,
    random_graph,
    zero_cluster_graph,
)
from repro.graphs.reference import weak_h_hop_sssp
from repro.graphs.validation import assert_weak_h_hop_contract

INF = float("inf")


class TestFigure1:
    """The paper's own adversarial instance."""

    def test_weak_semantics_output(self):
        g = figure1_graph()
        res = run_hk_ssp(g, [0], FIGURE1_HOP_BOUND)
        want_d, want_l = weak_h_hop_sssp(g, 0, FIGURE1_HOP_BOUND)
        assert res.dist[0] == want_d
        assert res.hops[0] == want_l

    def test_pareto_survival(self):
        """Node a=1 must keep forwarding the (d=2, l=1) direct-edge entry
        even after the cheaper 2-hop path demotes it -- node t=3 can
        receive source 0 only through it (with h = 3 every hop fits)."""
        g = figure1_graph()
        res = run_hk_ssp(g, [0], 3)
        assert res.dist[0][3] == 1  # via s->b->a->t, 3 hops
        res2 = run_hk_ssp(g, [0], 2)
        assert res2.dist[0][3] == INF  # 3-hop shortest not learnable at h=2


class TestExactAPSP:
    @pytest.mark.parametrize("seed", range(10))
    def test_apsp_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 14)
        g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.3, seed=seed)
        res = run_apsp(g)
        for x in range(n):
            assert res.dist[x] == dijkstra(g, x)[0], x

    def test_apsp_parent_pointers(self):
        g = random_graph(10, p=0.35, w_max=6, zero_fraction=0.3, seed=5)
        res = run_apsp(g)
        for x in range(g.n):
            d_true, l_true, _ = dijkstra_min_hops(g, x)
            for v in range(g.n):
                if v == x or res.dist[x][v] == INF:
                    continue
                p = res.parent[x][v]
                w = g.weight(p, v)
                assert w is not None
                assert res.dist[x][p] + w == res.dist[x][v]
                assert res.hops[x][v] == l_true[v]

    @pytest.mark.parametrize("family", ["zero_cluster", "grid", "layered", "all_zero"])
    def test_apsp_on_families(self, family):
        g = {
            "zero_cluster": lambda: zero_cluster_graph(4, 3, seed=2),
            "grid": lambda: grid_graph(3, 4, w_max=5, zero_fraction=0.4, seed=3),
            "layered": lambda: layered_graph(4, 3, seed=4),
            "all_zero": lambda: random_graph(9, p=0.4, w_max=0, seed=1),
        }[family]()
        res = run_apsp(g)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_one_way_reachability(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        res = run_apsp(g)
        assert res.dist[0] == [0, 2, 5]
        assert res.dist[2] == [INF, INF, 0]


class TestHKContract:
    @pytest.mark.parametrize("seed", range(20))
    def test_weak_contract_random(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 14)
        g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.3, seed=seed)
        h = rng.randint(1, n)
        srcs = rng.sample(range(n), rng.randint(1, n))
        res = run_hk_ssp(g, srcs, h)
        assert_weak_h_hop_contract(g, res.dist, res.hops, h)

    def test_k_ssp_exact(self):
        g = random_graph(12, p=0.3, w_max=5, zero_fraction=0.3, seed=9)
        res = run_k_ssp(g, [0, 4, 7])
        for x in (0, 4, 7):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_duplicate_sources_deduped(self):
        g = random_graph(6, p=0.4, w_max=4, seed=2)
        res = run_hk_ssp(g, [1, 1, 3, 1], 3)
        assert res.sources == (1, 3)
        assert res.k == 2


class TestRoundBounds:
    @pytest.mark.parametrize("seed", range(8))
    def test_theorem11_bound_holds(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 16)
        g = random_graph(n, p=0.25, w_max=5, zero_fraction=0.3, seed=seed)
        h = rng.randint(1, n)
        srcs = rng.sample(range(n), rng.randint(1, n))
        res = run_hk_ssp(g, srcs, h)
        assert res.round_bound == theorem11_round_bound(h, res.k, res.delta)
        assert res.last_sp_update_round <= res.round_bound
        assert res.metrics.rounds <= res.round_bound  # cutoff enforces it

    def test_cutoff_false_runs_to_quiescence(self):
        g = random_graph(8, p=0.35, w_max=4, zero_fraction=0.3, seed=1)
        res = run_hk_ssp(g, [0, 2], 4, cutoff=False)
        assert_weak_h_hop_contract(g, res.dist, res.hops, 4)

    def test_invariant2_budget(self):
        for seed in range(6):
            rng = random.Random(seed)
            n = rng.randint(6, 14)
            g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.35, seed=seed)
            h = max(2, n // 2)
            srcs = list(range(0, n, 2))
            res = run_hk_ssp(g, srcs, h)
            bound = max_entries_per_source(h, len(srcs), res.delta)
            # budget-enforced: floor(bound) + 1 slack for the protected
            # flag-d* entry
            assert res.max_entries_per_source <= int(bound) + 1


class TestCongestCompliance:
    def test_one_message_per_node_per_round(self):
        """The send schedule is collision-free: the Network would raise
        CongestionError otherwise, but check node_sends directly too."""
        g = random_graph(10, p=0.4, w_max=5, zero_fraction=0.4, seed=3)
        res = run_apsp(g)
        # every send is one broadcast op; rounds with sends <= rounds
        assert res.metrics.max_node_sends <= res.metrics.rounds

    def test_message_size_constant_words(self):
        g = random_graph(8, p=0.4, w_max=5, seed=2)
        res = run_apsp(g)
        assert res.metrics.max_message_words <= 5

    def test_undirected_broadcast_mode(self):
        g = random_graph(8, p=0.3, w_max=4, zero_fraction=0.3,
                         directed=False, seed=6)
        res = run_apsp(g, directed_broadcast=False)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]


class TestTracing:
    def test_trace_records_send_and_insert(self):
        g = random_graph(6, p=0.4, w_max=3, seed=1)
        trace = TraceRecorder()
        run_hk_ssp(g, [0], 3, trace=trace)
        kinds = {e.kind for e in trace}
        assert "send" in kinds and "insert" in kinds
        assert all(e.round >= 1 for e in trace)

    def test_invariant1_in_trace(self):
        """Every traced insert happens strictly before its scheduled
        round (Lemma II.12), recomputed from the trace itself."""
        import math
        g = random_graph(9, p=0.35, w_max=5, zero_fraction=0.4, seed=8)
        trace = TraceRecorder()
        run_hk_ssp(g, [0, 3, 6], 4, trace=trace)
        for e in trace.of_kind("insert"):
            d, l, x, kappa, pos = e.data
            assert e.round < math.ceil(kappa + pos)


class TestValidation:
    def test_bad_source_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_hk_ssp(g, [7], 2)

    def test_empty_sources_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_hk_ssp(g, [], 2)

    def test_bad_hop_bound_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_hk_ssp(g, [0], 0)

    def test_single_node_graph(self):
        g = WeightedDigraph(1)
        res = run_hk_ssp(g, [0], 1)
        assert res.dist[0] == [0]
        assert res.metrics.rounds == 0
