"""Property-based tests (hypothesis) for the core invariants.

These are the paper's invariants and contracts expressed as properties
over randomly generated graph instances:

* the (h, k)-SSP output contract of Algorithm 1 and Algorithm 2;
* Invariant 1 (asserted inside the program on every insert) and the
  one-send-per-round property (asserted inside the simulator);
* Invariant 2's per-source budget;
* Definition III.3 for CSSSP collections, plus Lemmas III.6/III.7;
* blocker coverage and the distributed == centralized agreement;
* the (1+eps) approximation ratio;
* oracle self-consistency (h-hop monotonicity, triangle inequality).
"""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    build_csssp,
    compute_blocker_set,
    greedy_blocker_reference,
    run_approx_apsp,
    run_hk_ssp,
    run_short_range,
    verify_approx_ratio,
    verify_blocker_coverage,
)
from repro.graphs import dijkstra, hop_limited_sssp, random_graph
from repro.graphs.validation import (
    assert_triangle_inequality,
    assert_weak_h_hop_contract,
)

from conftest import graph_instances, hk_instances

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.filter_too_much])


@settings(max_examples=40, **COMMON)
@given(hk_instances())
def test_pipelined_weak_contract(instance):
    """Algorithm 1 meets the (h, k)-SSP contract on arbitrary instances;
    Invariant 1 and the single-send property are asserted internally."""
    g, sources, h = instance
    res = run_hk_ssp(g, sources, h)
    assert_weak_h_hop_contract(g, res.dist, res.hops, h)


@settings(max_examples=40, **COMMON)
@given(hk_instances())
def test_pipelined_round_and_list_bounds(instance):
    g, sources, h = instance
    res = run_hk_ssp(g, sources, h)
    # Theorem I.1: all guaranteed outputs settled by the bound
    assert res.last_sp_update_round <= res.round_bound
    assert res.metrics.rounds <= res.round_bound
    # Invariant 2 (budget-enforced, +1 slack for the protected SP entry)
    budget = math.floor(math.sqrt(res.delta * h / res.k)) + 1 if res.delta \
        else 1
    assert res.max_entries_per_source <= budget + 1


@settings(max_examples=40, **COMMON)
@given(hk_instances())
def test_pipelined_congest_compliance(instance):
    """No message exceeds O(1) words; channel capacity 1 is never
    violated (the Network raises otherwise -- reaching the assert means
    compliance)."""
    g, sources, h = instance
    res = run_hk_ssp(g, sources, h)
    assert res.metrics.max_message_words <= 5


@settings(max_examples=40, **COMMON)
@given(graph_instances(), st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=10 ** 6))
def test_short_range_contract_and_congestion(gi, h, pick):
    g, _seed = gi
    s = pick % g.n
    res = run_short_range(g, s, h)
    assert_weak_h_hop_contract(g, {s: res.dist}, {s: res.hops}, h,
                               context="short-range")
    assert res.max_node_sends <= math.sqrt(h) + 1
    assert res.metrics.rounds <= res.dilation_bound


@settings(max_examples=25, **COMMON)
@given(graph_instances(n_hi=9), st.integers(min_value=1, max_value=4),
       st.data())
def test_csssp_definition(gi, h, data):
    g, seed = gi
    rng = random.Random(seed)
    k = data.draw(st.integers(min_value=1, max_value=g.n))
    sources = rng.sample(range(g.n), k)
    coll = build_csssp(g, sources, h)
    coll.check_consistency()
    for c in range(g.n):
        coll.in_tree_to(c)
        coll.out_tree_from(c)


@settings(max_examples=20, **COMMON)
@given(graph_instances(n_lo=4, n_hi=9), st.integers(min_value=1, max_value=3))
def test_blocker_distributed_equals_reference(gi, h):
    g, seed = gi
    rng = random.Random(seed)
    sources = rng.sample(range(g.n), max(1, g.n // 2))
    coll = build_csssp(g, sources, h)
    res = compute_blocker_set(g, coll)
    assert res.blockers == greedy_blocker_reference(coll)
    verify_blocker_coverage(coll, res.blockers)
    assert res.alg4_max_rounds <= res.alg4_round_bound


@settings(max_examples=12, **COMMON)
@given(graph_instances(n_lo=4, n_hi=8, w_choices=(0, 1, 6)),
       st.sampled_from([0.75, 1.0, 2.0]))
def test_approx_ratio_property(gi, eps):
    g, _seed = gi
    if eps <= 3.0 / g.n:
        return
    res = run_approx_apsp(g, eps)
    verify_approx_ratio(g, res)


@settings(max_examples=30, **COMMON)
@given(graph_instances())
def test_oracle_triangle_inequality(gi):
    g, _seed = gi
    dist = [dijkstra(g, s)[0] for s in range(g.n)]
    assert_triangle_inequality(g, dist)


@settings(max_examples=30, **COMMON)
@given(graph_instances(), st.integers(min_value=0, max_value=10 ** 6))
def test_oracle_hop_monotone_and_convergent(gi, pick):
    g, _seed = gi
    s = pick % g.n
    prev = None
    for h in range(g.n + 1):
        cur, _ = hop_limited_sssp(g, s, h)
        if prev is not None:
            assert all(c <= p for c, p in zip(cur, prev))
        prev = cur
    # at h = n the DP equals Dijkstra
    assert prev == dijkstra(g, s)[0]


@settings(max_examples=30, **COMMON)
@given(hk_instances())
def test_parent_pointers_are_real_edges(instance):
    g, sources, h = instance
    res = run_hk_ssp(g, sources, h)
    for x in res.sources:
        for v in range(g.n):
            p = res.parent[x][v]
            if p is not None:
                w = g.weight(p, v)
                assert w is not None
                assert res.dist[x][p] + w == res.dist[x][v]
