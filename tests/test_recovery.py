"""The recovery subsystem: checkpoint/restore, crash-recovery with
rollback + neighbour replay, incremental re-convergence, and the chaos
campaign.

The acceptance claims pinned here:

* a run suspended at any round, serialized to JSON, and resumed in a
  freshly built network -- on either backend -- finishes bit-identically
  to the uninterrupted run;
* a node crashed with ``restart_from="checkpoint"`` loses its volatile
  state, rolls back to its last snapshot, re-synchronizes via neighbour
  replay, and the whole network still converges to the exact Dijkstra
  distances -- with identical instrumented observations across backends;
* :class:`~repro.recovery.DynamicRun` repairs an updated graph by
  re-running only the affected sources, its ``rounds_to_repair`` is
  never more than the from-scratch recompute (strictly less when some
  source is unaffected), and a crash *during* the repair changes none
  of that -- with bit-identical digests across backends.
"""

import copy
import json

import pytest

from repro.congest import Network, RoundLimitExceeded
from repro.core.bellman_ford import BellmanFordProgram
from repro.faults import CrashWindow, FaultPlan
from repro.graphs import random_graph
from repro.graphs.reference import dijkstra
from repro.perf.backends import BACKENDS, make_network
from repro.recovery import (
    CheckpointError,
    CheckpointStore,
    DynamicRun,
    EdgeUpdate,
    NodeCheckpoint,
    NodeJoin,
    NodeLeave,
    RecoverableProgram,
    RunCheckpoint,
    capture_state,
    checkpoint_network,
    decode_value,
    encode_value,
    recovery_monitor,
    restore_network,
    restore_state,
    resume_from_checkpoint,
    run_chaos_case,
    run_recoverable,
)
from repro.recovery.chaos import ChaosCase

INF = float("inf")


def bf_factory(source=0):
    return lambda v: BellmanFordProgram(v, source=source)


# ---------------------------------------------------------------------------
# Codec and program-state capture
# ---------------------------------------------------------------------------

class TestCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -3, 7,
        1.5, INF, -INF, 0.1 + 0.2,     # floats via repr: exact round-trip
        "plain string", "",
        (1, 2, (3, "x")), [1, [2, 3]], (),
        {"a": 1, "b": [2.5, INF]},
        {(0, 1): 4, (1, 2): INF},      # tuple keys
        {1: {2: (3,)}},
    ])
    def test_roundtrip_exact(self, value):
        got = decode_value(json.loads(json.dumps(encode_value(value))))
        assert got == value
        assert type(got) is type(value)

    def test_roundtrip_collections(self):
        from collections import Counter, deque
        for value in [{1, 2, 3}, frozenset({(1, 2)}),
                      deque([1, 2]), deque([1, 2, 3], maxlen=5),
                      Counter({"a": 2, (0, 1): 1})]:
            got = decode_value(json.loads(json.dumps(encode_value(value))))
            assert got == value
            assert type(got) is type(value)
        assert decode_value(encode_value(deque([1], maxlen=4))).maxlen == 4

    def test_int_vs_float_preserved(self):
        assert decode_value(encode_value(3)) == 3
        assert isinstance(decode_value(encode_value(3)), int)
        assert isinstance(decode_value(encode_value(3.0)), float)

    def test_unencodable_value_raises(self):
        with pytest.raises(CheckpointError, match="not JSON-checkpointable"):
            encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(CheckpointError, match="unknown codec tag"):
            decode_value({"~": "nope", "v": []})


class TestCaptureState:
    def test_capture_restore_roundtrip_on_bellman_ford(self):
        p = BellmanFordProgram(3, source=0)
        p.d, p.hops, p.parent, p._announce = 7.0, 2, 1, 5
        snap = capture_state(p)
        p.d, p._announce = 1.0, None  # diverge after the snapshot
        restore_state(p, snap)
        assert (p.d, p.hops, p.parent, p._announce) == (7.0, 2, 1, 5)

    def test_snapshot_detached_from_live_state(self):
        p = BellmanFordProgram(0, source=0)
        p.extra = {"k": [1, 2]}
        snap = capture_state(p)
        p.extra["k"].append(3)
        restore_state(p, snap)
        assert p.extra == {"k": [1, 2]}

    def test_custom_protocol_preferred(self):
        class Custom:
            def __init__(self):
                self.x = 1

            def snapshot_state(self):
                return {"x": self.x}

            def restore_state(self, state):
                self.x = state["x"]

        c = Custom()
        snap = capture_state(c)
        assert snap[0] == "custom"
        c.x = 99
        restore_state(c, snap)
        assert c.x == 1

    def test_identity_sharing_survives(self):
        # One deepcopy memo: attributes referencing the same object must
        # still do so after restore (the pipelined best<->entry link).
        p = BellmanFordProgram(0, source=0)
        shared = [1]
        p.a, p.b = shared, {"ref": shared}
        snap = capture_state(p)
        restore_state(p, snap)
        assert p.a is p.b["ref"]


# ---------------------------------------------------------------------------
# Run-level checkpoints: suspend / serialize / resume
# ---------------------------------------------------------------------------

def _suspend(net, at_round):
    try:
        net.run(max_rounds=at_round)
    except RoundLimitExceeded:
        pass  # suspension point: the run is mid-flight by design
    return checkpoint_network(net, label=f"r{at_round}")


class TestRunCheckpoint:
    @pytest.mark.parametrize("suspend_backend", sorted(BACKENDS))
    @pytest.mark.parametrize("resume_backend", sorted(BACKENDS))
    def test_resume_equals_uninterrupted(self, suspend_backend,
                                         resume_backend):
        g = random_graph(10, p=0.4, w_max=6, zero_fraction=0.2, seed=3)
        full = make_network(g, bf_factory(), backend=resume_backend)
        m_full = full.run(max_rounds=60)

        net = make_network(g, bf_factory(), backend=suspend_backend)
        ckpt = _suspend(net, at_round=3)
        # Through the serialized form: what resumes is the JSON, not the
        # live object graph.
        ckpt = RunCheckpoint.from_json(ckpt.to_json())
        outs, metrics, _ = resume_from_checkpoint(
            ckpt, g, bf_factory(), 60, backend=resume_backend)
        assert outs == full.outputs()
        assert metrics.rounds == m_full.rounds
        assert metrics.messages == m_full.messages

    def test_resume_under_faults_replays_in_flight(self):
        # Delayed envelopes sitting in the injector when the run stops
        # must survive the checkpoint, or the resumed run diverges.
        g = random_graph(10, p=0.4, w_max=6, seed=7)
        plan = FaultPlan(seed=5, delay_rate=0.4, max_delay=4,
                         duplicate_rate=0.2)
        full = make_network(g, bf_factory(), fault_plan=plan)
        m_full = full.run(max_rounds=200)

        net = make_network(g, bf_factory(), fault_plan=plan)
        ckpt = _suspend(net, at_round=4)
        assert ckpt.in_flight or ckpt.fault_stats is not None
        ckpt = RunCheckpoint.from_json(ckpt.to_json())
        outs, metrics, _ = resume_from_checkpoint(
            ckpt, g, bf_factory(), 200, fault_plan=plan)
        assert outs == full.outputs()
        assert metrics.rounds == m_full.rounds
        assert dict(metrics.faults) == dict(m_full.faults)

    def test_version_gate(self):
        g = random_graph(6, p=0.5, w_max=4, seed=1)
        net = make_network(g, bf_factory())
        ckpt = _suspend(net, at_round=2)
        data = json.loads(ckpt.to_json())
        data["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            RunCheckpoint.from_json(json.dumps(data))

    def test_digest_detects_corruption(self):
        g = random_graph(6, p=0.5, w_max=4, seed=1)
        net = make_network(g, bf_factory())
        ckpt = _suspend(net, at_round=2)
        data = json.loads(ckpt.to_json())
        # Tamper with one node's state but keep its recorded digest.
        data["nodes"][0]["state"]["data"]["v"][0][1] = 12345
        tampered = RunCheckpoint.from_json(json.dumps(data))
        fresh = make_network(g, bf_factory())
        with pytest.raises(CheckpointError, match="digest mismatch"):
            restore_network(fresh, tampered)

    def test_restore_requires_fresh_network(self):
        g = random_graph(6, p=0.5, w_max=4, seed=1)
        net = make_network(g, bf_factory())
        ckpt = _suspend(net, at_round=2)
        with pytest.raises(CheckpointError, match="freshly built"):
            restore_network(net, ckpt)  # this network already ran

    def test_store_roundtrip(self, tmp_path):
        g = random_graph(6, p=0.5, w_max=4, seed=2)
        net = make_network(g, bf_factory())
        ckpt = _suspend(net, at_round=2)
        store = CheckpointStore(tmp_path)
        store.save("mid", ckpt)
        assert store.names() == ["mid"]
        loaded = store.load("mid")
        assert loaded.digest == ckpt.digest
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load("missing")
        with pytest.raises(CheckpointError, match="bad checkpoint name"):
            store.path_of("../evil")

    def test_checkpoint_of_pipelined_state_falls_back_to_pickle(self):
        # Algorithm 1's entry lists are identity-linked structures the
        # JSON codec refuses; the envelope must still round-trip them.
        from repro.core.pipelined import (PipelinedSSPProgram, gamma_for,
                                          weak_delta_bound)

        g = random_graph(8, p=0.4, w_max=4, zero_fraction=0.3, seed=4)
        sources, h = (0, 2), g.n - 1
        gamma = gamma_for(h, len(sources), weak_delta_bound(g, sources, h))
        factory = lambda v: PipelinedSSPProgram(v, sources, h, gamma)
        full = make_network(g, factory)
        full.run(max_rounds=20 * g.n + 200)

        net = make_network(g, factory)
        ckpt = _suspend(net, at_round=5)
        assert any(c.state["codec"] == "pickle" for c in ckpt.nodes)
        ckpt = RunCheckpoint.from_json(ckpt.to_json())
        outs, _, _ = resume_from_checkpoint(
            ckpt, g, factory, 20 * g.n + 200)
        assert outs == full.outputs()


# ---------------------------------------------------------------------------
# Crash recovery: rollback + replay
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def _plan(self, node=2, crash=4, restart=9, **kwargs):
        return FaultPlan(crashes=(CrashWindow(
            node, crash, restart, restart_from="checkpoint"),), **kwargs)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_converges_to_dijkstra_after_rollback(self, backend):
        g = random_graph(10, p=0.4, w_max=6, zero_fraction=0.2, seed=3)
        true, _ = dijkstra(g, 0)
        outs, _, _, stats = run_recoverable(
            g, bf_factory(), 600, fault_plan=self._plan(),
            checkpoint_every=3, backend=backend)
        assert [o[0] for o in outs] == list(true)
        assert stats.rollbacks >= 1
        assert stats.replayed_frames > 0

    def test_rollback_actually_loses_state(self):
        # The crashed node's wrapper must report a rollback *and* the
        # inner state must have been restored from a snapshot (we pin
        # that by checking the node still converges -- pure omission
        # without replay would leave it stuck with stale skew).
        g = random_graph(12, p=0.35, w_max=8, seed=9)
        true, _ = dijkstra(g, 0)
        plan = self._plan(node=5, crash=3, restart=11)
        outs, _, net, stats = run_recoverable(
            g, bf_factory(), 800, fault_plan=plan, checkpoint_every=2)
        assert stats.rollbacks == 1
        assert net.programs[5].rollbacks == 1
        assert net.programs[5]._skew > 0
        assert [o[0] for o in outs] == list(true)

    def test_with_delays_and_duplicates(self):
        g = random_graph(12, p=0.35, w_max=8, seed=2)
        true, _ = dijkstra(g, 0)
        plan = self._plan(node=3, crash=5, restart=12,
                          seed=7, delay_rate=0.2, max_delay=3,
                          duplicate_rate=0.1)
        outs, _, _, stats = run_recoverable(
            g, bf_factory(), 800, fault_plan=plan, checkpoint_every=4)
        assert [o[0] for o in outs] == list(true)
        assert stats.rollbacks >= 1

    def test_multiple_crash_windows(self):
        g = random_graph(12, p=0.4, w_max=6, seed=6)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(crashes=(
            CrashWindow(2, 3, 8, restart_from="checkpoint"),
            CrashWindow(7, 6, 14, restart_from="checkpoint"),
        ))
        outs, _, _, stats = run_recoverable(
            g, bf_factory(), 800, fault_plan=plan, checkpoint_every=3)
        assert [o[0] for o in outs] == list(true)
        assert stats.rollbacks == 2

    def test_under_rollback_aware_monitor(self):
        # The plain monotonicity invariant would fire on the rollback;
        # the rollback-aware one must ride through it while the lower
        # bound stays armed the whole time.
        g = random_graph(10, p=0.4, w_max=6, seed=3)
        true, _ = dijkstra(g, 0)
        outs, _, _, stats = run_recoverable(
            g, bf_factory(), 600, fault_plan=self._plan(),
            checkpoint_every=3, monitor=recovery_monitor(g, [0]))
        assert stats.rollbacks >= 1
        assert [o[0] for o in outs] == list(true)

    def test_instrumented_equivalence_across_backends(self):
        from differential import assert_instrumented_equivalent
        from repro.recovery import checkpoint_windows_of

        g = random_graph(10, p=0.4, w_max=6, seed=5)
        plan = self._plan(node=4, crash=4, restart=10,
                          seed=3, delay_rate=0.2, max_delay=2)

        def factory(v):
            return RecoverableProgram(
                BellmanFordProgram(v, source=0), node=v,
                windows=checkpoint_windows_of(plan, v),
                checkpoint_every=3, replay_slack=2)

        assert_instrumented_equivalent(
            g, factory, max_rounds=800, fault_plan=plan,
            monitor_factory=lambda: recovery_monitor(g, [0]),
            with_tracer=True, record_window=3,
            max_message_words=8 + RecoverableProgram.frame_overhead_words())

    def test_snapshots_persisted_to_store(self, tmp_path):
        g = random_graph(8, p=0.4, w_max=4, seed=1)
        store = CheckpointStore(tmp_path)
        run_recoverable(g, bf_factory(), 600, fault_plan=self._plan(),
                        checkpoint_every=3, store=store, run_label="t")
        names = store.node_names()
        assert names and all(n.startswith("t-n") for n in names)
        ck = store.load_node(names[0])
        assert isinstance(ck, NodeCheckpoint)

    def test_replay_window_pruning_counts_gaps(self):
        g = random_graph(10, p=0.4, w_max=6, seed=3)
        true, _ = dijkstra(g, 0)
        # A 1-round log cannot cover the rollback's request horizon.
        outs, _, _, stats = run_recoverable(
            g, bf_factory(), 800, fault_plan=self._plan(crash=6, restart=12),
            checkpoint_every=2, replay_window=1)
        assert stats.replay_gaps > 0
        # Bellman-Ford self-stabilizes: pre-crash knowledge the replay
        # could not recover is already reflected in the neighbours'
        # estimates, so convergence must still hold.
        assert [o[0] for o in outs] == list(true)

    def test_wrapper_validates_windows(self):
        inner = BellmanFordProgram(0, source=0)
        state_cw = CrashWindow(0, 2, 5)  # restart_from="state"
        with pytest.raises(ValueError, match="not a checkpoint-restart"):
            RecoverableProgram(inner, node=0, windows=(state_cw,))
        other = CrashWindow(3, 2, 5, restart_from="checkpoint")
        with pytest.raises(ValueError, match="belongs to node 3"):
            RecoverableProgram(inner, node=0, windows=(other,))
        with pytest.raises(ValueError, match="checkpoint_every"):
            RecoverableProgram(inner, node=0, checkpoint_every=0)

    def test_faultfree_wrapped_run_matches_plain(self):
        g = random_graph(10, p=0.4, w_max=6, seed=11)
        plain = Network(g, bf_factory())
        plain.run(max_rounds=60)
        outs, _, _, stats = run_recoverable(g, bf_factory(), 200)
        assert outs == plain.outputs()
        assert stats.rollbacks == 0

    def test_determinism(self):
        g = random_graph(10, p=0.4, w_max=6, seed=8)
        plan = self._plan(seed=13, delay_rate=0.2, duplicate_rate=0.1)

        def run():
            outs, m, _, stats = run_recoverable(
                g, bf_factory(), 800, fault_plan=plan, checkpoint_every=3)
            return (outs, m.rounds, m.messages, dict(m.faults),
                    stats.as_dict())

        assert run() == run()


# ---------------------------------------------------------------------------
# DynamicRun: incremental re-convergence
# ---------------------------------------------------------------------------

class TestDynamicRun:
    def _graph(self, seed=5, n=10):
        return random_graph(n, p=0.35, w_max=6, zero_fraction=0.2,
                            seed=seed)

    def test_initial_table_matches_oracle(self):
        g = self._graph()
        run = DynamicRun(g, [0, 3, 7], method="bellman-ford")
        assert run.oracle_check() == []

    def test_event_validation(self):
        with pytest.raises(ValueError, match="self-loop"):
            EdgeUpdate(2, 2, 1)
        with pytest.raises(ValueError, match="weight"):
            EdgeUpdate(0, 1, -3)
        with pytest.raises(ValueError, match="touch"):
            NodeJoin(5, ((1, 2, 3),))
        with pytest.raises(TypeError, match="event"):
            DynamicRun(self._graph(), [0]).apply("not an event")

    @pytest.mark.parametrize("method", ["bellman-ford", "pipelined"])
    def test_edge_updates_stay_oracle_correct(self, method):
        g = self._graph()
        run = DynamicRun(g, [0, 3, 7], method=method)
        for ev in (EdgeUpdate(0, 1, 0), EdgeUpdate(1, 4, 9),
                   EdgeUpdate(0, 1, None)):
            run.apply(ev)
            assert run.oracle_check() == [], f"{method} wrong after {ev}"

    def test_node_leave_and_join(self):
        g = self._graph()
        run = DynamicRun(g, [0, 3], method="bellman-ford")
        run.apply(NodeLeave(5))
        assert run.oracle_check() == []
        # A leave makes the node unreachable from every source.
        assert all(run.table[s][5] == INF for s in (0, 3))
        run.apply(NodeJoin(5, ((5, 2, 1), (4, 5, 2))))
        assert run.oracle_check() == []
        assert any(run.table[s][5] < INF for s in (0, 3))

    def test_affected_sources_are_a_superset_of_changed_rows(self):
        g = self._graph(seed=7)
        run = DynamicRun(g, list(range(g.n)), method="bellman-ford")
        before = copy.deepcopy(run.table)
        rec = run.apply(EdgeUpdate(0, 1, 0))
        changed = {s for s in run.sources if run.table[s] != before[s]}
        assert changed <= set(rec.affected)
        assert run.oracle_check() == []

    def test_unaffected_update_repairs_for_free(self):
        g = self._graph(seed=5)
        run = DynamicRun(g, [0], method="bellman-ford", compare_full=True)
        # Raising a non-tree edge far above its current weight cannot
        # change any distance from source 0.
        u, v, w = max(g.edges(), key=lambda e: e[2])
        rec = run.apply(EdgeUpdate(u, v, w + 50))
        if rec.affected:  # support-loss rule may still trigger a re-run
            assert run.oracle_check() == []
        else:
            assert rec.rounds_to_repair == 0
            assert rec.full_rounds > 0

    def test_rounds_to_repair_strictly_cheaper_when_affected_subset(self):
        g = self._graph(seed=1, n=14)
        run = DynamicRun(g, [0, 5, 9], method="bellman-ford",
                         compare_full=True)
        found = False
        for u, v, w in sorted(g.edges()):
            rec = run.apply(EdgeUpdate(u, v, w + 2))
            assert run.oracle_check() == []
            assert rec.rounds_to_repair <= rec.full_rounds
            if 0 < len(rec.affected) < len(run.sources):
                assert rec.rounds_to_repair < rec.full_rounds
                found = True
                break
        assert found, "no partially-affecting update in this graph"

    def test_metrics_accumulate_rounds_to_repair(self):
        g = self._graph()
        run = DynamicRun(g, [0, 3], method="bellman-ford")
        assert run.metrics.rounds_to_repair == 0
        r1 = run.apply(EdgeUpdate(0, 1, 0)).rounds_to_repair
        r2 = run.apply(EdgeUpdate(1, 4, 9)).rounds_to_repair
        assert run.metrics.rounds_to_repair == r1 + r2
        if r1 + r2:
            assert run.metrics.summary()["rounds_to_repair"] == r1 + r2

    def test_registry_publishes_counters(self):
        from repro.obs import MetricsRegistry
        from repro.obs.registry import run_metrics_view

        g = self._graph()
        reg = MetricsRegistry()
        run = DynamicRun(g, [0, 3], method="bellman-ford", registry=reg)
        run.apply(EdgeUpdate(0, 1, 0))
        view = run_metrics_view(reg)
        assert view.rounds_to_repair == run.metrics.rounds_to_repair
        assert view.rounds == run.metrics.rounds

    def test_digest_deterministic_and_history_sensitive(self):
        g = self._graph()
        a = DynamicRun(g, [0, 3], method="bellman-ford")
        b = DynamicRun(g, [0, 3], method="bellman-ford")
        assert a.digest() == b.digest()
        a.apply(EdgeUpdate(0, 1, 0))
        assert a.digest() != b.digest()
        b.apply(EdgeUpdate(0, 1, 0))
        assert a.digest() == b.digest()


class TestCrashDuringUpdate:
    """The issue's acceptance test: a dynamic run with a crash window in
    the middle of an update batch converges to oracle-correct distances
    on both backends, with bit-identical instrumented digests."""

    def test_crash_during_update_pinned_across_backends(self):
        g = random_graph(12, p=0.35, w_max=6, zero_fraction=0.2, seed=4)
        plan = FaultPlan(
            seed=9, delay_rate=0.15, duplicate_rate=0.1, max_delay=2,
            crashes=(CrashWindow(3, 4, 10, restart_from="checkpoint"),))
        digests = {}
        for backend in ("reference", "fast"):
            run = DynamicRun(g, [0, 5, 9], fault_plan=plan,
                             checkpoint_every=4, backend=backend,
                             monitor_factory=lambda gr, srcs:
                             recovery_monitor(gr, srcs))
            run.apply(EdgeUpdate(0, 1, 0), EdgeUpdate(2, 6, 9))
            run.apply(NodeLeave(7))
            assert run.oracle_check() == [], f"{backend} diverged"
            assert run.metrics.rounds_to_repair > 0
            digests[backend] = run.digest()
        assert digests["reference"] == digests["fast"]


class TestChaos:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_chaos_case_oracle_clean_and_backend_pinned(self, seed):
        case = ChaosCase(seed=seed, n=8, batches=2, events_per_batch=2)
        ref = run_chaos_case(case, backend="reference")
        fast = run_chaos_case(case, backend="fast")
        assert ref.ok and fast.ok
        assert ref.digest_recoverable == fast.digest_recoverable
        assert ref.digest_pipelined == fast.digest_pipelined
