"""Tests for the sequential oracles, cross-checked against networkx."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    WeightedDigraph,
    apsp,
    apsp_min_hops,
    dijkstra,
    dijkstra_min_hops,
    eccentricity_bound,
    k_source_distances,
    max_min_hops,
    path_from_parents,
    random_graph,
    shortest_path_diameter,
    zero_reachability,
)
from repro.graphs.io import to_networkx
from repro.graphs.reference import weak_delta_bound, weak_h_hop_sssp

INF = float("inf")


class TestDijkstraVsNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_distances_match_networkx(self, seed):
        rng = random.Random(seed)
        g = random_graph(rng.randint(3, 15), p=0.3,
                         w_max=rng.choice([0, 1, 9]),
                         zero_fraction=0.4, seed=seed)
        nxg = to_networkx(g)
        for s in range(g.n):
            got, _ = dijkstra(g, s)
            want = nx.single_source_dijkstra_path_length(nxg, s)
            for v in range(g.n):
                assert got[v] == want.get(v, INF), (s, v)

    def test_parent_pointers_form_shortest_paths(self):
        g = random_graph(12, p=0.3, w_max=6, zero_fraction=0.3, seed=3)
        dist, parent = dijkstra(g, 0)
        for v in range(g.n):
            if dist[v] == INF or v == 0:
                continue
            path = path_from_parents(parent, 0, v)
            w = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
            assert w == dist[v]


class TestMinHops:
    def test_min_hops_among_shortest_paths(self):
        # 0 -> 2 has weight 2 directly (1 hop) and via 1 (2 hops, weight 2)
        g = WeightedDigraph.from_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 2)])
        dist, hops, parent = dijkstra_min_hops(g, 0)
        assert dist[2] == 2 and hops[2] == 1 and parent[2] == 0

    def test_zero_edges_increase_hops_not_distance(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (0, 2, 0), (2, 3, 5)])
        dist, hops, _ = dijkstra_min_hops(g, 0)
        assert dist[2] == 0 and hops[2] == 1
        assert dist[3] == 5 and hops[3] == 2

    def test_hops_consistent_with_dist(self):
        for seed in range(8):
            g = random_graph(10, p=0.35, w_max=5, zero_fraction=0.5, seed=seed)
            dist, _ = dijkstra(g, 0)
            dist2, hops, _ = dijkstra_min_hops(g, 0)
            assert dist == dist2
            for v in range(g.n):
                if dist[v] != INF:
                    assert hops[v] <= g.n - 1


class TestWeakOracle:
    def test_weak_semantics_filtering(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 0), (1, 2, 0)])
        d, l = weak_h_hop_sssp(g, 0, 1)
        assert d == [0, 0, INF]  # node 2 needs 2 hops
        d2, _ = weak_h_hop_sssp(g, 0, 2)
        assert d2 == [0, 0, 0]

    def test_weak_delta_bound(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 5), (1, 2, 7)])
        assert weak_delta_bound(g, [0], 1) == 5
        assert weak_delta_bound(g, [0], 2) == 12


class TestGlobalQuantities:
    def test_shortest_path_diameter(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 3), (1, 2, 4), (2, 0, 0)])
        assert shortest_path_diameter(g) == 7

    def test_max_min_hops(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 3, 0)])
        assert max_min_hops(g) == 3

    def test_eccentricity_bound_path(self):
        from repro.graphs import path_graph
        assert eccentricity_bound(path_graph(6)) == 5

    def test_apsp_matches_per_source(self):
        g = random_graph(8, p=0.4, w_max=5, seed=2)
        mat = apsp(g)
        for s in range(8):
            assert mat[s] == dijkstra(g, s)[0]

    def test_k_source(self):
        g = random_graph(8, p=0.4, w_max=5, seed=2)
        d = k_source_distances(g, [1, 3])
        assert set(d) == {1, 3}
        assert d[1] == dijkstra(g, 1)[0]


class TestZeroReachability:
    def test_zero_closure(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 0), (1, 2, 0), (2, 3, 1)])
        zr = zero_reachability(g)
        assert zr[0] == {0, 1, 2}
        assert zr[2] == {2}
        assert zr[3] == {3}

    def test_matches_networkx_on_zero_subgraph(self):
        for seed in range(6):
            g = random_graph(10, p=0.35, w_max=4, zero_fraction=0.5, seed=seed)
            zr = zero_reachability(g)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(10))
            nxg.add_edges_from((u, v) for u, v, w in g.edges() if w == 0)
            for s in range(10):
                assert zr[s] == set(nx.descendants(nxg, s)) | {s}


class TestPathFromParents:
    def test_cycle_detection(self):
        parent = [None, 2, 1]
        with pytest.raises(ValueError, match="cycle"):
            path_from_parents(parent, 0, 2)

    def test_unreachable_returns_none(self):
        assert path_from_parents([None, None], 0, 1) is None

    def test_source_itself(self):
        assert path_from_parents([None], 0, 0) == [0]
