"""The ack/retransmit resilience wrapper: correctness under faults.

The acceptance claim: any Program wrapped in ResilientProgram converges
to the same outputs as its fault-free run, under seeded drops (10%),
duplicates, delays, corruption, and crash-restart windows -- with the
protocol overhead counted separately in RunMetrics.
"""

import pytest

from repro.congest import Network
from repro.core.bellman_ford import BellmanFordProgram, run_bellman_ford
from repro.core.short_range import run_short_range
from repro.faults import CrashWindow, FaultPlan, ResilientProgram, run_resilient
from repro.graphs import random_graph
from repro.graphs.reference import dijkstra


def bf_factory(source=0):
    return lambda v: BellmanFordProgram(v, source=source)


class TestWrapperTransparency:
    def test_faultfree_wrapped_run_matches_unwrapped_outputs(self):
        g = random_graph(10, p=0.4, w_max=6, seed=11)
        plain = Network(g, bf_factory())
        plain.run(max_rounds=50)
        outs, metrics, _ = run_resilient(g, bf_factory(), max_rounds=200)
        assert outs == plain.outputs()
        assert metrics.retransmissions == 0  # nothing lost, nothing resent

    def test_wrapper_counts_overhead_separately(self):
        g = random_graph(10, p=0.4, w_max=6, seed=11)
        plan = FaultPlan(seed=2, drop_rate=0.2)
        _, metrics, _ = run_resilient(g, bf_factory(), max_rounds=400,
                                      fault_plan=plan)
        assert metrics.retransmissions > 0
        assert metrics.ack_messages > 0

    def test_wrapper_widens_word_budget_for_framing(self):
        # The frame adds seq/cksum/acks words; run_resilient widens the
        # budget so the inner payload budget is preserved.
        g = random_graph(8, p=0.5, w_max=4, seed=0)
        _, metrics, net = run_resilient(g, bf_factory(), max_rounds=100)
        assert net.max_message_words > 8
        assert metrics.max_message_words <= net.max_message_words


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestConvergenceUnderDrops:
    """The headline acceptance criterion: 10% drops, exact distances."""

    def test_wrapped_bellman_ford_converges(self, seed):
        g = random_graph(12, p=0.35, w_max=8, seed=seed)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=seed + 100, drop_rate=0.1)
        res = run_bellman_ford(g, 0, fault_plan=plan, resilient=True)
        assert res.dist == list(true)

    def test_wrapped_short_range_converges(self, seed):
        g = random_graph(12, p=0.35, w_max=8, seed=seed)
        true, _ = dijkstra(g, 0)
        h = g.n - 1
        plan = FaultPlan(seed=seed + 100, drop_rate=0.1)
        res = run_short_range(g, 0, h, fault_plan=plan, resilient=True)
        for v in range(g.n):
            if res.hops[v] <= h:
                assert res.dist[v] == true[v], v

    def test_unwrapped_bellman_ford_breaks_at_same_rate(self, seed):
        # The control arm: the same fault plans do corrupt raw runs for
        # at least one seed, so the wrapper is doing real work.
        g = random_graph(12, p=0.35, w_max=8, seed=seed)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=seed + 100, drop_rate=0.1)
        res = run_bellman_ford(g, 0, fault_plan=plan)
        dist_ok = res.dist == list(true)
        drops = res.metrics.faults["drops"]
        # Either some message was dropped (usually breaking the run) or
        # this seed's coins spared every message.
        assert drops > 0 or dist_ok


class TestConvergenceUnderMixedFaults:
    def test_drops_dups_delays_corruption_together(self):
        g = random_graph(12, p=0.35, w_max=8, seed=7)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=11, drop_rate=0.1, duplicate_rate=0.1,
                         delay_rate=0.1, corrupt_rate=0.1, max_delay=4)
        res = run_bellman_ford(g, 0, fault_plan=plan, resilient=True)
        assert res.dist == list(true)
        m = res.metrics
        assert m.faults["corruptions"] > 0  # checksums really were hit

    def test_corrupted_frames_rejected_not_believed(self):
        # Corruption must never produce a wrong distance through the
        # wrapper: the checksum rejects the frame and retransmission
        # recovers the original.
        g = random_graph(10, p=0.4, w_max=8, seed=3)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=5, corrupt_rate=0.3)
        res = run_bellman_ford(g, 0, fault_plan=plan, resilient=True)
        assert res.dist == list(true)

    def test_crash_restart_recovers(self):
        g = random_graph(10, p=0.4, w_max=6, seed=9)
        true, _ = dijkstra(g, 0)
        # A mid-run transient crash: retransmission replays everything
        # the node missed once it is back.
        plan = FaultPlan(crashes=(CrashWindow(2, 2, 8),))
        res = run_bellman_ford(g, 0, fault_plan=plan, resilient=True)
        assert res.dist == list(true)
        assert res.metrics.faults["crash_recv_drops"] > 0


class TestWrapperProtocol:
    def test_duplicate_suppression(self):
        g = random_graph(10, p=0.4, w_max=6, seed=4)
        true, _ = dijkstra(g, 0)
        plan = FaultPlan(seed=6, duplicate_rate=0.5, max_delay=2)
        outs, metrics, net = run_resilient(g, bf_factory(), max_rounds=600,
                                           fault_plan=plan)
        assert [o[0] for o in outs] == list(true)
        suppressed = sum(p.duplicates_suppressed for p in net.programs)
        assert suppressed > 0

    def test_wrapped_program_exposes_inner(self):
        inner = BellmanFordProgram(0, source=0)
        wrapped = ResilientProgram(inner)
        assert wrapped.inner is inner

    def test_timeout_validated(self):
        with pytest.raises(ValueError, match="timeout"):
            ResilientProgram(BellmanFordProgram(0, source=0), timeout=0)

    def test_determinism_of_wrapped_runs(self):
        g = random_graph(10, p=0.4, w_max=6, seed=8)
        plan = FaultPlan(seed=13, drop_rate=0.15, duplicate_rate=0.1)

        def run():
            outs, m, _ = run_resilient(g, bf_factory(), max_rounds=600,
                                       fault_plan=plan)
            return (outs, m.rounds, m.messages, m.retransmissions,
                    m.ack_messages, dict(m.faults))

        assert run() == run()


class TestUnreachablePeer:
    """The fail-fast detector for permanently crashed peers."""

    def _permanent_plan(self, node=2, at=2):
        return FaultPlan(crashes=(CrashWindow(node, at),))

    def test_permanent_crash_raises_with_post_mortem(self):
        from repro.faults import UnreachablePeer

        g = random_graph(10, p=0.4, w_max=6, seed=3)
        plan = self._permanent_plan()
        with pytest.raises(UnreachablePeer) as info:
            run_resilient(g, bf_factory(), max_rounds=5000, fault_plan=plan)
        exc = info.value
        assert exc.peer == 2  # the crashed node is the one unreachable
        assert exc.tries >= 8  # the auto threshold
        assert exc.post_mortem is not None
        assert "round" in exc.post_mortem.render()

    def test_transient_crash_does_not_trip_auto_detector(self):
        g = random_graph(10, p=0.4, w_max=6, seed=3)
        plan = FaultPlan(crashes=(CrashWindow(2, 2, 40),))
        outs, metrics, _ = run_resilient(g, bf_factory(), max_rounds=5000,
                                         fault_plan=plan)
        true, _ = dijkstra(g, 0)
        assert [o[0] for o in outs] == list(true)

    def test_explicit_threshold_overrides_auto(self):
        from repro.faults import UnreachablePeer

        g = random_graph(8, p=0.5, w_max=4, seed=5)
        # A long transient window with a tiny threshold trips mid-window.
        plan = FaultPlan(crashes=(CrashWindow(1, 2, 400),))
        with pytest.raises(UnreachablePeer) as info:
            run_resilient(g, bf_factory(), max_rounds=5000, fault_plan=plan,
                          unreachable_after=2)
        assert info.value.tries >= 2

    def test_disabled_detector_retries_forever(self):
        from repro.congest import RoundLimitExceeded

        g = random_graph(8, p=0.5, w_max=4, seed=5)
        plan = self._permanent_plan(node=1)
        with pytest.raises(RoundLimitExceeded):
            run_resilient(g, bf_factory(), max_rounds=300, fault_plan=plan,
                          unreachable_after=None)


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


class TestBackoffProperty:
    """Hypothesis: retransmission intervals never exceed max_backoff."""

    @given(timeout=st.integers(1, 5),
           backoff=st.floats(1.0, 4.0),
           extra=st.integers(0, 40))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backoff_interval_capped(self, timeout, backoff, extra):
        from repro.congest import Network, RoundLimitExceeded

        max_backoff = timeout + extra
        g = random_graph(5, p=0.9, w_max=4, seed=1)
        plan = FaultPlan(crashes=(CrashWindow(1, 1),))  # permanent
        wrappers = []

        def factory(v):
            w = ResilientProgram(bf_factory()(v), timeout=timeout,
                                 backoff=backoff, max_backoff=max_backoff)
            wrappers.append(w)
            return w

        budget = 8 + ResilientProgram.frame_overhead_words(4)
        net = Network(g, factory, fault_plan=plan,
                      max_message_words=budget)
        with pytest.raises(RoundLimitExceeded):
            # Never quiesces (node 1 is dead and the detector is off):
            # the budget just bounds how long we let the retries grow.
            net.run(max_rounds=40 * (timeout + extra) + 100)
        retried = 0
        for w in wrappers:
            for pend in w._unacked.values():
                assert pend.interval <= float(max_backoff) + 1e-9, (
                    f"interval {pend.interval} exceeds max_backoff "
                    f"{max_backoff} (timeout={timeout}, backoff={backoff})")
                retried += pend.tries - 1
        assert retried > 0  # the property was actually exercised
