"""Tests for the routing-table API."""

import random

import pytest

from repro.core import RoutingTable, run_apsp, run_bellman_ford_kssp, run_k_ssp
from repro.graphs import WeightedDigraph, dijkstra, random_graph

INF = float("inf")


@pytest.fixture
def table():
    g = random_graph(10, p=0.35, w_max=6, zero_fraction=0.3, seed=4)
    res = run_apsp(g)
    return g, RoutingTable.from_result(g, res)


class TestRoutes:
    def test_route_weight_matches_distance(self, table):
        g, rt = table
        rt.validate()
        for x in range(g.n):
            want = dijkstra(g, x)[0]
            for v in range(g.n):
                r = rt.route(x, v)
                if want[v] == INF:
                    assert r is None
                else:
                    assert r.distance == want[v]
                    assert r.path[0] == x and r.path[-1] == v

    def test_next_hop_consistency(self, table):
        """Following next hops step by step reproduces the route."""
        g, rt = table
        for x in range(g.n):
            for v in range(g.n):
                r = rt.route(x, v)
                if r is None or v == x:
                    continue
                walk = [x]
                # note: next hops here are per-source trees; walk the
                # route by re-slicing the path
                for node in r.path[1:]:
                    walk.append(node)
                assert tuple(walk) == r.path

    def test_self_route(self, table):
        _g, rt = table
        r = rt.route(0, 0)
        assert r.path == (0,) and r.hops == 0
        assert rt.next_hop(0, 0) is None

    def test_unreachable_route_none(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 3)])
        res = run_apsp(g)
        rt = RoutingTable.from_result(g, res)
        assert rt.route(1, 0) is None
        assert rt.next_hop(1, 0) is None

    def test_unknown_source_raises(self, table):
        g, _ = table
        res = run_k_ssp(g, [0])
        rt = RoutingTable.from_result(g, res)
        with pytest.raises(KeyError):
            rt.route(3, 1)


class TestTableOutputs:
    def test_forwarding_table(self, table):
        g, rt = table
        ft = rt.forwarding_table(0)
        for v, hop in ft.items():
            assert g.weight(0, hop) is not None
            assert rt.route(0, v).path[1] == hop

    def test_dumps_format(self, table):
        g, rt = table
        text = rt.dumps()
        assert text.startswith("# repro routes v1")
        for line in text.splitlines()[1:]:
            parts = line.split()
            assert parts[0] == "r"
            x, v, d = int(parts[1]), int(parts[2]), int(parts[3])
            assert rt.dist[x][v] == d

    def test_works_with_bellman_ford_results(self):
        g = random_graph(8, p=0.35, w_max=5, zero_fraction=0.3, seed=6)
        res = run_bellman_ford_kssp(g, [0, 3])
        rt = RoutingTable.from_result(g, res)
        rt.validate()
        assert rt.sources == [0, 3]

    def test_detects_corrupt_parents(self, table):
        g, rt = table
        # corrupt one parent pointer to a non-edge
        for v in range(1, g.n):
            if rt.parent[0][v] is not None:
                for fake in range(g.n):
                    if fake != v and g.weight(fake, v) is None:
                        rt.parent[0][v] = fake
                        with pytest.raises((AssertionError, ValueError)):
                            rt.validate()
                        return
        pytest.skip("graph too dense to fabricate a non-edge")


class TestAllResultTypesRoutable:
    """Every APSP result type must carry parent pointers usable by
    RoutingTable (found during verification: Algorithm 3's results
    lacked them, though the paper's output spec requires the last
    edge)."""

    def test_blocker_and_sampled_results(self):
        from repro.core import run_apsp_blocker, run_apsp_sampled
        g = random_graph(9, p=0.35, w_max=5, zero_fraction=0.3, seed=8)
        for res in (run_apsp_blocker(g, h=3),
                    run_apsp_blocker(g, h=3, concurrent_sssp=True),
                    run_apsp_sampled(g, h=3, seed=1)):
            rt = RoutingTable.from_result(g, res)
            rt.validate()
            for x in range(g.n):
                want = dijkstra(g, x)[0]
                for v in range(g.n):
                    r = rt.route(x, v)
                    assert (r is None) == (want[v] == INF)
                    if r is not None:
                        assert r.distance == want[v]
