"""Tests for the routing-table API."""

import random

import pytest

from repro.core import RoutingTable, run_apsp, run_bellman_ford_kssp, run_k_ssp
from repro.graphs import WeightedDigraph, dijkstra, random_graph

INF = float("inf")


@pytest.fixture
def table():
    g = random_graph(10, p=0.35, w_max=6, zero_fraction=0.3, seed=4)
    res = run_apsp(g)
    return g, RoutingTable.from_result(g, res)


class TestRoutes:
    def test_route_weight_matches_distance(self, table):
        g, rt = table
        rt.validate()
        for x in range(g.n):
            want = dijkstra(g, x)[0]
            for v in range(g.n):
                r = rt.route(x, v)
                if want[v] == INF:
                    assert r is None
                else:
                    assert r.distance == want[v]
                    assert r.path[0] == x and r.path[-1] == v

    def test_next_hop_consistency(self, table):
        """Following next hops step by step reproduces the route."""
        g, rt = table
        for x in range(g.n):
            for v in range(g.n):
                r = rt.route(x, v)
                if r is None or v == x:
                    continue
                walk = [x]
                # note: next hops here are per-source trees; walk the
                # route by re-slicing the path
                for node in r.path[1:]:
                    walk.append(node)
                assert tuple(walk) == r.path

    def test_self_route(self, table):
        _g, rt = table
        r = rt.route(0, 0)
        assert r.path == (0,) and r.hops == 0
        assert rt.next_hop(0, 0) is None

    def test_unreachable_route_none(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 3)])
        res = run_apsp(g)
        rt = RoutingTable.from_result(g, res)
        assert rt.route(1, 0) is None
        assert rt.next_hop(1, 0) is None

    def test_unknown_source_raises(self, table):
        g, _ = table
        res = run_k_ssp(g, [0])
        rt = RoutingTable.from_result(g, res)
        with pytest.raises(KeyError):
            rt.route(3, 1)


class TestTableOutputs:
    def test_forwarding_table(self, table):
        g, rt = table
        ft = rt.forwarding_table(0)
        for v, hop in ft.items():
            assert g.weight(0, hop) is not None
            assert rt.route(0, v).path[1] == hop

    def test_dumps_format(self, table):
        g, rt = table
        text = rt.dumps()
        assert text.startswith("# repro routes v1")
        for line in text.splitlines()[1:]:
            parts = line.split()
            assert parts[0] == "r"
            x, v, d = int(parts[1]), int(parts[2]), int(parts[3])
            assert rt.dist[x][v] == d

    def test_works_with_bellman_ford_results(self):
        g = random_graph(8, p=0.35, w_max=5, zero_fraction=0.3, seed=6)
        res = run_bellman_ford_kssp(g, [0, 3])
        rt = RoutingTable.from_result(g, res)
        rt.validate()
        assert rt.sources == [0, 3]

    def test_detects_corrupt_parents(self, table):
        g, rt = table
        # corrupt one parent pointer to a non-edge
        for v in range(1, g.n):
            if rt.parent[0][v] is not None:
                for fake in range(g.n):
                    if fake != v and g.weight(fake, v) is None:
                        rt.parent[0][v] = fake
                        with pytest.raises((AssertionError, ValueError)):
                            rt.validate()
                        return
        pytest.skip("graph too dense to fabricate a non-edge")


class TestUnreachableContract:
    """Disconnected pairs must never raise (the serving layer relies on
    it): distance -> inf, route/next_hop -> None, forwarding_table
    omits.  Caller errors stay loud: unknown source -> KeyError,
    out-of-range target -> ValueError, uniformly."""

    @pytest.fixture
    def sparse(self):
        g = WeightedDigraph.from_edges(4, [(0, 1, 3), (2, 3, 1)])
        res = run_apsp(g)
        return g, RoutingTable.from_result(g, res)

    def test_distance_inf_not_raise(self, sparse):
        _g, rt = sparse
        assert rt.distance(0, 3) == INF
        assert rt.distance(0, 1) == 3

    def test_route_and_next_hop_none(self, sparse):
        _g, rt = sparse
        assert rt.route(0, 2) is None
        assert rt.next_hop(0, 2) is None

    def test_forwarding_table_omits_unreachable_and_self(self, sparse):
        _g, rt = sparse
        assert rt.forwarding_table(0) == {1: 1}
        assert rt.forwarding_table(2) == {3: 3}

    @pytest.mark.parametrize("query", [
        lambda rt: rt.distance(9, 0),
        lambda rt: rt.route(9, 0),
        lambda rt: rt.next_hop(9, 0),
        lambda rt: rt.forwarding_table(9),
    ])
    def test_unknown_source_keyerror(self, sparse, query):
        _g, rt = sparse
        with pytest.raises(KeyError):
            query(rt)

    @pytest.mark.parametrize("query", [
        lambda rt: rt.distance(0, 99),
        lambda rt: rt.route(0, 99),
        lambda rt: rt.next_hop(0, 99),
    ])
    def test_out_of_range_target_valueerror(self, sparse, query):
        _g, rt = sparse
        with pytest.raises(ValueError):
            query(rt)

    def test_forwarding_table_matches_route_walk(self, table):
        g, rt = table
        for x in range(g.n):
            ft = rt.forwarding_table(x)
            for v in range(g.n):
                r = rt.route(x, v)
                if r is None or v == x:
                    assert v not in ft
                else:
                    assert ft[v] == r.path[1]


class TestLoads:
    def test_round_trip(self, table):
        g, rt = table
        back = RoutingTable.loads(rt.dumps(), g)
        assert back.sources == rt.sources
        for x in rt.sources:
            assert back.dist[x] == rt.dist[x]
            for v in range(g.n):
                assert back.route(x, v) == rt.route(x, v)
        assert back.dumps() == rt.dumps()

    def test_round_trip_keeps_isolated_source(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2)])
        res = run_apsp(g)
        rt = RoutingTable.from_result(g, res)
        back = RoutingTable.loads(rt.dumps(), g)
        # node 2 has no outgoing edges: no route lines, but it is still
        # a routed source after the round-trip.
        assert 2 in back.dist
        assert back.distance(2, 2) == 0
        assert back.distance(2, 0) == INF

    def test_loads_legacy_header_infers_sources(self, table):
        g, rt = table
        text = rt.dumps()
        head, rest = text.split("\n", 1)
        legacy = f"# repro routes v1 n={g.n}\n" + rest
        back = RoutingTable.loads(legacy, g)
        assert set(back.sources) <= set(rt.sources)
        for x in back.sources:
            assert back.dist[x] == rt.dist[x]

    def test_loads_rejects_garbage(self, table):
        g, _rt = table
        with pytest.raises(ValueError):
            RoutingTable.loads("not a dump\n", g)
        with pytest.raises(ValueError):
            RoutingTable.loads(f"# repro routes v1 n={g.n + 5}\n", g)
        with pytest.raises(ValueError):
            RoutingTable.loads(
                f"# repro routes v1 n={g.n}\nr 0 1\n", g)

    def test_loads_validates(self, table):
        g, rt = table
        assert RoutingTable.loads(rt.dumps(), g).validate() == []


class TestValidateReportsAll:
    def test_clean_table_returns_empty(self, table):
        _g, rt = table
        assert rt.validate() == []

    def test_collects_every_violation(self, table):
        g, rt = table
        # Corrupt two independent entries: a wrong distance and a broken
        # parent chain; validate must report both, not stop at one.
        reach = [(x, v) for x in range(g.n) for v in range(g.n)
                 if x != v and rt.dist[x][v] != INF]
        (x1, v1), (x2, v2) = reach[0], reach[-1]
        rt.dist[x1][v1] += 1
        rt.parent[x2][v2] = None
        violations = rt.validate(raise_on_violation=False)
        assert len(violations) >= 2
        assert any(f"{x1}->{v1}" in s for s in violations)
        assert any(f"{x2} -> {v2}" in s or f"{x2}->{v2}" in s
                   for s in violations)
        with pytest.raises(AssertionError) as exc:
            rt.validate()
        assert "violation(s)" in str(exc.value)

    def test_self_distance_checked(self, table):
        _g, rt = table
        rt.dist[0][0] = 7
        bad = rt.validate(raise_on_violation=False)
        assert any("self-distance" in s for s in bad)


class TestAllResultTypesRoutable:
    """Every APSP result type must carry parent pointers usable by
    RoutingTable (found during verification: Algorithm 3's results
    lacked them, though the paper's output spec requires the last
    edge)."""

    def test_blocker_and_sampled_results(self):
        from repro.core import run_apsp_blocker, run_apsp_sampled
        g = random_graph(9, p=0.35, w_max=5, zero_fraction=0.3, seed=8)
        for res in (run_apsp_blocker(g, h=3),
                    run_apsp_blocker(g, h=3, concurrent_sssp=True),
                    run_apsp_sampled(g, h=3, seed=1)):
            rt = RoutingTable.from_result(g, res)
            rt.validate()
            for x in range(g.n):
                want = dijkstra(g, x)[0]
                for v in range(g.n):
                    r = rt.route(x, v)
                    assert (r is None) == (want[v] == INF)
                    if r is not None:
                        assert r.distance == want[v]
