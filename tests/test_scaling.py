"""Tests for the Gabow-scaling APSP extension (the paper's Section V
open-problem construction)."""

import random

import pytest

from repro.core import run_scaling_apsp
from repro.graphs import WeightedDigraph, dijkstra, random_graph, zero_cluster_graph

INF = float("inf")


class TestExactness:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dijkstra(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 12)
        g = random_graph(n, p=0.3, w_max=rng.choice([1, 7, 63]),
                         zero_fraction=0.3, seed=seed)
        res = run_scaling_apsp(g)
        for x in range(n):
            assert res.dist[x] == dijkstra(g, x)[0], (seed, x)

    def test_zero_weights_handled(self):
        """Reduced weights are frequently zero even for positive inputs;
        all-zero inputs are the extreme case."""
        g = random_graph(8, p=0.4, w_max=0, seed=1)
        res = run_scaling_apsp(g)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_zero_cluster(self):
        g = zero_cluster_graph(3, 3, seed=2)
        res = run_scaling_apsp(g)
        for x in range(g.n):
            assert res.dist[x] == dijkstra(g, x)[0]

    def test_one_way_reachability(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 6), (1, 2, 3)])
        res = run_scaling_apsp(g)
        assert res.dist[0] == [0, 6, 9]
        assert res.dist[2] == [INF, INF, 0]


class TestPhaseStructure:
    def test_bits_match_weight_range(self):
        g = random_graph(8, p=0.35, w_max=60, zero_fraction=0.2, seed=3)
        res = run_scaling_apsp(g)
        assert res.bits == 6  # 60 < 2^6
        # one reachability phase plus one refinement per bit
        assert len(res.phase_rounds) == res.bits + 1

    def test_total_rounds_sum_phases(self):
        g = random_graph(8, p=0.35, w_max=12, zero_fraction=0.2, seed=4)
        res = run_scaling_apsp(g)
        assert res.metrics.rounds == sum(res.phase_rounds)

    def test_small_delta_phases(self):
        """Each refinement solves an SSSP with distances <= n-1 -- phase
        round counts must stay well below a full-Delta run's."""
        g = random_graph(12, p=0.3, w_max=200, zero_fraction=0.2, seed=5)
        res = run_scaling_apsp(g)
        for r in res.phase_rounds[1:]:
            # solo dilation (n-1)sqrt(n-1)+n is ~ 50; the composed FIFO
            # stays within a small multiple
            assert r <= 12 * (g.n ** 1.5)
