"""Tests for the concurrent composition scheduler (Section II-C's
Ghaffari-framework stand-in) and its use by the k-source short-range."""

import math
import random

import pytest

from repro.congest import MultiplexedNetwork, compose_time_sliced
from repro.core import run_k_source_short_range_concurrent, run_short_range
from repro.core.short_range import ShortRangeProgram
from repro.graphs import WeightedDigraph, random_graph

INF = float("inf")


def short_range_factory(source, h, *, delay_tolerant=True):
    g2 = math.sqrt(h)
    return lambda v: ShortRangeProgram(v, source, h, g2,
                                       delay_tolerant=delay_tolerant)


class TestTimeSliced:
    def test_outputs_identical_to_solo(self):
        g = random_graph(10, p=0.3, w_max=5, zero_fraction=0.4, seed=1)
        srcs = [0, 3, 7]
        outs, metrics, physical = compose_time_sliced(
            g, [short_range_factory(s, 4) for s in srcs],
            max_rounds_each=500)
        for i, s in enumerate(srcs):
            solo = run_short_range(g, s, 4, cutoff=False)
            assert [o[0] for o in outs[i]] == solo.dist

    def test_physical_rounds_k_times_dilation(self):
        g = random_graph(8, p=0.3, w_max=4, zero_fraction=0.3, seed=2)
        srcs = [0, 2, 4, 6]
        _, _, physical = compose_time_sliced(
            g, [short_range_factory(s, 3) for s in srcs],
            max_rounds_each=500)
        max_solo = max(run_short_range(g, s, 3, cutoff=False).metrics.rounds
                       for s in srcs)
        assert physical <= len(srcs) * max_solo + len(srcs)


class TestFIFOMultiplexer:
    @pytest.mark.parametrize("seed", range(8))
    def test_outputs_match_solo(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 14)
        g = random_graph(n, p=0.3, w_max=5, zero_fraction=0.4, seed=seed)
        h = rng.randint(2, n)
        srcs = rng.sample(range(n), rng.randint(2, max(2, n // 2)))
        dist, metrics, summary = run_k_source_short_range_concurrent(
            g, srcs, h, mode="fifo")
        for s in srcs:
            assert dist[s] == run_short_range(g, s, h).dist, (seed, s)

    def test_fifo_beats_timesliced(self):
        """The whole point of composing: concurrent execution beats the
        k-times-dilation baseline on a moderately loaded instance."""
        g = random_graph(16, p=0.25, w_max=4, zero_fraction=0.4, seed=3)
        srcs = list(range(0, 16, 2))
        _, _, summary = run_k_source_short_range_concurrent(g, srcs, 6,
                                                            mode="fifo")
        assert summary["physical_rounds"] < summary["timesliced_cost"]

    def test_fifo_within_composition_envelope(self):
        for seed in range(5):
            g = random_graph(12, p=0.3, w_max=4, zero_fraction=0.3, seed=seed)
            srcs = list(range(0, 12, 3))
            _, _, summary = run_k_source_short_range_concurrent(
                g, srcs, 5, mode="fifo")
            assert summary["physical_rounds"] <= \
                2 * summary["composition_envelope"] + 8

    def test_channel_capacity_respected(self):
        g = random_graph(10, p=0.3, w_max=4, zero_fraction=0.3, seed=4)
        srcs = [0, 1, 2, 3]
        net = MultiplexedNetwork(
            g, [short_range_factory(s, 4) for s in srcs])
        m = net.run(max_rounds=2000)
        # capacity 1: per-channel messages <= physical rounds
        assert m.max_channel_congestion <= m.rounds

    def test_unknown_mode_rejected(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError, match="mode"):
            run_k_source_short_range_concurrent(g, [0], 2, mode="quantum")

    def test_instance_graphs_must_match_count(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError, match="instance graph"):
            MultiplexedNetwork(g, [short_range_factory(0, 2)],
                               instance_graphs=[g, g])

    def test_per_instance_weight_views(self):
        """Two instances see different weights on the same physical
        links (the Gabow-scaling setting)."""
        base = WeightedDigraph.from_edges(3, [(0, 1, 5), (1, 2, 5)])
        view_a = WeightedDigraph.from_edges(3, [(0, 1, 1), (1, 2, 1)])
        view_b = WeightedDigraph.from_edges(3, [(0, 1, 3), (1, 2, 0)])
        net = MultiplexedNetwork(
            base,
            [short_range_factory(0, 2), short_range_factory(0, 2)],
            instance_graphs=[view_a, view_b])
        net.run(max_rounds=200)
        a = [o[0] for o in net.outputs(0)]
        b = [o[0] for o in net.outputs(1)]
        assert a == [0, 1, 2]
        assert b == [0, 3, 3]


class TestMultiplexerEdgeCases:
    def test_fast_forward_idle_gaps(self):
        """Instances scheduled far in the future: the multiplexer must
        jump over the idle gap rather than spin round by round."""
        from repro.congest import MultiplexedNetwork, Program

        class LateTicker(Program):
            def __init__(self):
                self.fired_at = None
                self._due = 500

            def on_send(self, ctx, r):
                if self._due is not None and r >= self._due:
                    self._due = None
                    self.fired_at = r
                    ctx.broadcast("late")

            def next_active_round(self, ctx, r):
                return self._due

            def output(self, ctx):
                return self.fired_at

        from repro.graphs import path_graph
        g = path_graph(3)
        net = MultiplexedNetwork(g, [lambda v: LateTicker()])
        m = net.run(max_rounds=600)
        assert net.outputs(0)[0] == 500
        assert m.rounds == 500

    def test_oversized_message_rejected(self):
        from repro.congest import MultiplexedNetwork, Program
        from repro.graphs import path_graph

        class Bloater(Program):
            def on_send(self, ctx, r):
                if ctx.node == 0 and r == 1:
                    ctx.send(1, tuple(range(100)))

            def next_active_round(self, ctx, r):
                return 1 if r < 1 else None

        net = MultiplexedNetwork(path_graph(2), [lambda v: Bloater()])
        with pytest.raises(ValueError, match="oversized"):
            net.run(max_rounds=10)


class _CountingMonitor:
    """Duck-typed invariant monitor: records every after_round call and
    pokes the per-instance view the way InvariantMonitor's extractors do
    (``network.programs[v]`` / ``network.contexts[v]``)."""

    def __init__(self):
        self.calls = []

    def after_round(self, network, r, touched):
        for v in touched:
            assert network.programs[v] is not None
            assert network.contexts[v].node == v
        self.calls.append((r, frozenset(touched)))


class TestMultiplexerResumption:
    """MultiplexedNetwork.run() mirrors Network.run()'s contract:
    ``max_rounds`` is absolute, RoundLimitExceeded leaves queues and
    clocks intact, and a re-run with a larger budget finishes the same
    execution -- with monitor, tracer, and registry staying attached
    throughout (the ISSUE's interruption/resumption coverage)."""

    def _make(self, **kwargs):
        from repro.obs import MetricsRegistry, Tracer

        g = random_graph(10, p=0.3, w_max=5, zero_fraction=0.4, seed=7)
        srcs = [0, 3, 7]
        monitor = _CountingMonitor()
        tracer = Tracer()
        registry = MetricsRegistry()
        net = MultiplexedNetwork(
            g, [short_range_factory(s, 4) for s in srcs],
            monitor=monitor, tracer=tracer, registry=registry, **kwargs)
        return g, srcs, net, monitor, tracer, registry

    def test_interrupt_then_resume_matches_solo(self):
        from repro.congest.network import RoundLimitExceeded
        from repro.obs import run_metrics_view

        g, srcs, net, monitor, tracer, registry = self._make()
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=3)
        assert net._physical == 3
        calls_at_interrupt = len(monitor.calls)
        assert calls_at_interrupt > 0

        m = net.run(max_rounds=500)  # absolute budget; resumes at round 4
        for i, s in enumerate(srcs):
            solo = run_short_range(g, s, 4, cutoff=False)
            assert [o[0] for o in net.outputs(i)] == solo.dist, s

        # the monitor kept firing after resumption, rounds never repeat
        # (the interrupted round 4 is re-attempted, not skipped)
        rounds_seen = [r for r, _ in monitor.calls]
        assert len(monitor.calls) > calls_at_interrupt
        assert rounds_seen == sorted(rounds_seen)
        assert max(rounds_seen) <= m.rounds

        # the tracer saw both segments: mux.round events cover the run
        mux_rounds = [e.data for e in tracer.of_kind("mux.round")]
        assert sum(d[0] for d in mux_rounds) == m.messages
        assert len(tracer.of_kind("mux.send")) == m.messages

        # delta-publishing across the interrupt: no double counting
        assert run_metrics_view(registry, prefix="mux") == m

    def test_limit_error_is_a_runtime_error_and_reports_backlog(self):
        g, srcs, net, *_ = self._make()
        with pytest.raises(RuntimeError, match="envelopes still queued"):
            net.run(max_rounds=2)
        assert net.queue_backlog() >= 0

    def test_resume_after_quiescence_is_a_noop(self):
        _, _, net, monitor, tracer, _ = self._make()
        m1 = net.run(max_rounds=500)
        calls, events = len(monitor.calls), len(tracer.events)
        m2 = net.run(max_rounds=500)
        assert m2.rounds == m1.rounds and m2.messages == m1.messages
        assert (len(monitor.calls), len(tracer.events)) == (calls, events)

    def test_interrupted_equals_uninterrupted(self):
        """Chopping the run into many budget slices must not change the
        execution at all."""
        from repro.congest.network import RoundLimitExceeded

        g, srcs, net, _, _, _ = self._make()
        budget = 2
        while True:
            try:
                m = net.run(max_rounds=budget)
                break
            except RoundLimitExceeded:
                budget += 2
        _, _, whole, _, _, _ = self._make()
        m_ref = whole.run(max_rounds=500)
        assert m.summary() == m_ref.summary()
        for i in range(len(srcs)):
            assert net.outputs(i) == whole.outputs(i)
