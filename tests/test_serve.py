"""Tests for the distance-oracle serving layer (repro.serve)."""

import asyncio
from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import WeightedDigraph, dijkstra, random_graph
from repro.obs import MetricsRegistry
from repro.recovery import EdgeUpdate, NodeJoin, NodeLeave
from repro.serve import (
    AsyncFrontend,
    DistanceOracle,
    Query,
    RouteCache,
    generate_workload,
    serve_stream,
)

INF = float("inf")


@pytest.fixture(scope="module")
def graph():
    return random_graph(20, p=0.3, w_max=8, zero_fraction=0.2, seed=11)


@pytest.fixture
def oracle(graph):
    return DistanceOracle(graph, num_shards=4, method="bellman-ford",
                          cache_size=256)


def truth(graph):
    return {u: dijkstra(graph, u)[0] for u in range(graph.n)}


class TestWorkload:
    def test_deterministic(self):
        a = generate_workload(32, 500, seed=5)
        b = generate_workload(32, 500, seed=5)
        assert a.queries == b.queries

    def test_seed_changes_stream(self):
        a = generate_workload(32, 500, seed=5)
        b = generate_workload(32, 500, seed=6)
        assert a.queries != b.queries

    def test_zipf_skew_concentrates(self):
        wl = generate_workload(64, 4000, seed=0, skew=1.2)
        # A skewed stream revisits pairs: far fewer distinct pairs than
        # queries (the property caching relies on).
        assert wl.distinct_pairs() < len(wl) / 2

    def test_sources_restricted(self):
        wl = generate_workload(16, 200, seed=1, sources=[2, 5])
        assert {q.u for q in wl} <= {2, 5}

    def test_kinds_mixed(self):
        wl = generate_workload(16, 300, seed=2, path_fraction=0.5)
        kinds = {q.kind for q in wl}
        assert kinds == {"distance", "path"}

    def test_batches_cover_stream(self):
        wl = generate_workload(16, 103, seed=3)
        chunks = list(wl.batches(25))
        assert [q for c in chunks for q in c] == list(wl.queries)
        assert max(len(c) for c in chunks) <= 25

    @pytest.mark.parametrize("kwargs", [
        {"n": 0, "num_queries": 1},
        {"n": 4, "num_queries": -1},
        {"n": 4, "num_queries": 1, "skew": -1},
        {"n": 4, "num_queries": 1, "path_fraction": 2.0},
        {"n": 4, "num_queries": 1, "sources": []},
        {"n": 4, "num_queries": 1, "sources": [9]},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            generate_workload(**kwargs)

    def test_query_kind_validated(self):
        with pytest.raises(ValueError):
            Query(0, 1, "teleport")


class TestRouteCache:
    def test_lru_eviction_order(self):
        c = RouteCache(2)
        c.put((0, 1), "a")
        c.put((0, 2), "b")
        assert c.get((0, 1)) == "a"      # refreshes (0,1)
        c.put((0, 3), "c")               # evicts (0,2)
        assert c.get((0, 2)) is None
        assert c.get((0, 1)) == "a"
        assert c.evictions == 1

    def test_counters_and_hit_rate(self):
        c = RouteCache(8)
        c.put((1, 2), "x")
        c.get((1, 2))
        c.get((9, 9))
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5

    def test_cached_none_distinct_from_miss(self):
        c = RouteCache(8)
        sentinel = object()
        c.put((1, 2), None)              # cached unreachable answer
        assert c.get((1, 2), sentinel) is None
        assert c.get((3, 4), sentinel) is sentinel

    def test_capacity_zero_disables(self):
        c = RouteCache(0)
        c.put((0, 1), "a")
        assert len(c) == 0
        assert c.get((0, 1)) is None
        assert c.misses == 1

    def test_invalidate_sources_selective(self):
        c = RouteCache(16)
        for u in (0, 1, 2):
            for v in (5, 6):
                c.put((u, v), u * 10 + v)
        dropped = c.invalidate_sources({0, 2})
        assert dropped == 4
        assert c.get((1, 5)) == 15
        assert c.get((0, 5)) is None

    def test_registry_mirroring(self):
        reg = MetricsRegistry()
        c = RouteCache(4, registry=reg)
        c.put((0, 1), "a")
        c.get((0, 1))
        c.get((0, 2))
        c.invalidate_sources({0})
        snap = reg.snapshot()["counters"]
        assert snap["serve.cache_hits"] == 1
        assert snap["serve.cache_misses"] == 1
        assert snap["serve.cache_invalidations"] == 1

    # A small key space (4 sources x 4 targets) against capacities 0-5
    # forces constant collisions, evictions, and whole-source drops.
    _keys = st.tuples(st.integers(0, 3), st.integers(0, 3))
    _ops = st.lists(st.one_of(
        st.tuples(st.just("put"), _keys, st.integers(0, 9)),
        st.tuples(st.just("get"), _keys),
        st.tuples(st.just("invalidate"),
                  st.sets(st.integers(0, 3), max_size=3)),
        st.tuples(st.just("clear")),
    ), max_size=40)

    @settings(max_examples=150, deadline=None)
    @given(capacity=st.integers(0, 5), ops=_ops)
    def test_model_based_lru_consistency(self, capacity, ops):
        """Under arbitrary put/get/invalidate/clear sequences the cache
        tracks a model OrderedDict implementing textbook bounded LRU:
        same contents, same recency order (checked through
        ``batch_view``, whose iteration order IS the eviction order),
        same hit/miss/eviction/invalidation counters after every
        operation."""
        c = RouteCache(capacity)
        model = OrderedDict()
        counts = {"hits": 0, "misses": 0, "evictions": 0,
                  "invalidations": 0}
        for op in ops:
            if op[0] == "put":
                _, key, value = op
                c.put(key, value)
                if capacity > 0:
                    if key in model:
                        model.move_to_end(key)
                    model[key] = value
                    if len(model) > capacity:
                        model.popitem(last=False)
                        counts["evictions"] += 1
            elif op[0] == "get":
                _, key = op
                got = c.get(key, default="MISS")
                if key in model:
                    model.move_to_end(key)
                    counts["hits"] += 1
                    assert got == model[key]
                else:
                    counts["misses"] += 1
                    assert got == "MISS"
            elif op[0] == "invalidate":
                _, sources = op
                stale = [k for k in model if k[0] in sources]
                for k in stale:
                    del model[k]
                counts["invalidations"] += len(stale)
                assert c.invalidate_sources(sources) == len(stale)
            else:  # clear
                counts["invalidations"] += len(model)
                assert c.clear() == len(model)
                model.clear()
            assert list(c.batch_view().items()) == list(model.items())
            assert len(c) == len(model)
            assert (c.hits, c.misses, c.evictions, c.invalidations) == (
                counts["hits"], counts["misses"], counts["evictions"],
                counts["invalidations"])
        total = counts["hits"] + counts["misses"]
        assert c.hit_rate == (counts["hits"] / total if total else 0.0)
        assert c.stats()["size"] == len(model)


class TestOracleQueries:
    def test_distances_match_dijkstra(self, graph, oracle):
        want = truth(graph)
        for u in range(graph.n):
            for v in range(graph.n):
                assert oracle.distance(u, v) == want[u][v]

    def test_paths_are_genuine(self, graph, oracle):
        want = truth(graph)
        for u in (0, 7, 13):
            for v in range(graph.n):
                r = oracle.path(u, v)
                if want[u][v] == INF:
                    assert r is None
                    continue
                assert r.distance == want[u][v]
                assert r.path[0] == u and r.path[-1] == v
                total = 0
                for a, b in zip(r.path, r.path[1:]):
                    w = graph.weight(a, b)
                    assert w is not None
                    total += w
                assert total == r.distance

    def test_unreachable_pair_serves_inf_not_raise(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2)])
        o = DistanceOracle(g, num_shards=1, method="bellman-ford")
        assert o.distance(1, 0) == INF
        assert o.path(1, 0) is None
        assert o.serve([Query(1, 0, "distance")]) == [INF]

    def test_batched_equals_naive(self, graph, oracle):
        wl = generate_workload(graph.n, 1500, seed=4)
        assert oracle.serve(wl) == oracle.serve_naive(wl)

    def test_batch_cache_consistency_second_pass(self, graph, oracle):
        wl = generate_workload(graph.n, 800, seed=9)
        first = oracle.serve(wl)
        second = oracle.serve(wl)           # mostly cache hits
        assert first == second
        assert oracle.cache.hits > 0

    def test_subset_sources(self, graph):
        o = DistanceOracle(graph, sources=[3, 8], num_shards=2,
                           method="bellman-ford")
        assert o.distance(3, 5) == dijkstra(graph, 3)[0][5]
        with pytest.raises(KeyError):
            o.distance(4, 5)

    def test_out_of_range_target_rejected(self, oracle, graph):
        with pytest.raises(ValueError):
            oracle.serve([Query(0, graph.n + 3, "distance")])

    def test_constructor_validation(self, graph):
        with pytest.raises(ValueError):
            DistanceOracle(graph, sources=[])
        with pytest.raises(ValueError):
            DistanceOracle(graph, sources=[graph.n])
        with pytest.raises(ValueError):
            DistanceOracle(graph, num_shards=graph.n + 1)

    def test_sharding_partitions_all_sources(self, graph):
        o = DistanceOracle(graph, num_shards=3, method="bellman-ford")
        seen = [s for shard in o.view.shards for s in shard.sources]
        assert sorted(seen) == list(range(graph.n))
        assert len(o.view.shards) == 3

    def test_metrics_published(self, graph):
        reg = MetricsRegistry()
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford",
                           registry=reg)
        o.serve(generate_workload(graph.n, 100, seed=0))
        snap = reg.snapshot()
        assert snap["counters"]["serve.queries"] == 100
        assert snap["counters"]["serve.batches"] >= 1
        assert snap["gauges"]["serve.epoch"] == 0

    def test_validate_shards_clean(self, oracle):
        assert oracle.validate_shards() == []


class TestRefresh:
    def test_epoch_bumps_and_stays_correct(self, graph):
        o = DistanceOracle(graph, num_shards=4, method="bellman-ford")
        u, v, w = max(graph.edges(), key=lambda e: e[2])
        rec = o.refresh(EdgeUpdate(u, v, 0))
        assert o.epoch == 1 == rec.epoch
        assert o.oracle_check() == []
        assert o.validate_shards() == []

    def test_unaffected_shards_not_rebuilt(self, graph):
        o = DistanceOracle(graph, num_shards=4, method="bellman-ford")
        old = o.view
        # A weight increase on a heavy edge rarely touches every source;
        # find an update affecting a strict subset.
        for u, v, w in sorted(graph.edges()):
            rec = o.refresh(EdgeUpdate(u, v, w + 1))
            if 0 < len(rec.affected_sources) < graph.n:
                break
        else:
            pytest.skip("no partially-affecting update on this graph")
        kept = set(range(4)) - set(rec.rebuilt_shards)
        assert rec.rebuilt_shards, "some shard must rebuild"
        for i in kept:
            # Object identity: untouched shards are carried over, not
            # recomputed.
            assert o.view.shards[i] is old.shards[i]
        assert {s.epoch for s in o.view.shards if s.index in
                set(rec.rebuilt_shards)} == {o.epoch}

    def test_inflight_view_survives_swap(self, graph):
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford")
        before = o.view
        u, v, w = max(graph.edges(), key=lambda e: e[2])
        o.refresh(EdgeUpdate(u, v, 0))
        # The captured view still answers with the *old* epoch's table.
        want_old = truth(graph)
        got = o.query_batch([Query(u, v, "distance")], view=before)
        assert got == [want_old[u][v]]
        assert before.epoch == 0 and o.view.epoch == 1

    def test_only_affected_cache_entries_dropped(self, graph):
        o = DistanceOracle(graph, num_shards=4, method="bellman-ford")
        o.serve(generate_workload(graph.n, 1000, seed=6))
        size_before = len(o.cache)
        u, v, w = sorted(graph.edges())[0]
        rec = o.refresh(EdgeUpdate(u, v, w + 2))
        unaffected = set(range(graph.n)) - set(rec.affected_sources)
        assert len(o.cache) == size_before - rec.invalidated_entries
        # surviving entries all belong to unaffected sources
        assert all(k[0] in unaffected for k in o.cache._data)

    def test_node_leave_and_join(self, graph):
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford")
        victim = 5
        edges = [(u, v, w) for u, v, w in graph.edges() if victim in (u, v)]
        o.refresh(NodeLeave(victim))
        assert o.oracle_check() == []
        assert o.distance(victim, 0) == INF
        o.refresh(NodeJoin(victim, tuple(edges)))
        assert o.oracle_check() == []

    def test_refresh_metrics(self, graph):
        reg = MetricsRegistry()
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford",
                           registry=reg)
        u, v, w = max(graph.edges(), key=lambda e: e[2])
        o.refresh(EdgeUpdate(u, v, 0))
        snap = reg.snapshot()
        assert snap["counters"]["serve.refreshes"] == 1
        assert snap["counters"]["serve.refresh_rounds"] > 0
        assert snap["gauges"]["serve.epoch"] == 1

    def test_build_rounds_accumulates(self, graph):
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford")
        base = o.build_rounds
        assert base > 0
        u, v, w = max(graph.edges(), key=lambda e: e[2])
        rec = o.refresh(EdgeUpdate(u, v, 0))
        assert o.build_rounds == base + rec.rounds_to_repair


class TestCrossBackendDigests:
    def test_bit_identical_build_and_refresh(self, graph):
        digests = {}
        for backend in ("reference", "fast"):
            o = DistanceOracle(graph, num_shards=3,
                               method="pipelined", backend=backend)
            u, v, w = max(graph.edges(), key=lambda e: e[2])
            o.refresh(EdgeUpdate(u, v, 0))
            assert o.oracle_check() == []
            digests[backend] = o.digest()
        assert digests["reference"] == digests["fast"]


class TestAsyncFrontend:
    def test_point_queries(self, graph, oracle):
        want = truth(graph)

        async def main():
            async with AsyncFrontend(oracle) as fe:
                ds = await asyncio.gather(
                    *(fe.distance(0, v) for v in range(graph.n)))
                r = await fe.path(0, 1)
            return ds, r

        ds, r = asyncio.run(main())
        assert ds == want[0]
        if want[0][1] == INF:
            assert r is None
        else:
            assert r.distance == want[0][1]

    def test_stream_serving_matches_naive(self, graph, oracle):
        wl = generate_workload(graph.n, 600, seed=8)
        got = serve_stream(oracle, wl, batch_size=64)
        assert got == oracle.serve_naive(wl)

    def test_concurrent_refresh_epoch_consistency(self, graph):
        o = DistanceOracle(graph, num_shards=2, method="bellman-ford")
        wl = generate_workload(graph.n, 400, seed=3)
        u, v, w = max(graph.edges(), key=lambda e: e[2])

        async def main():
            async with AsyncFrontend(o, max_workers=2) as fe:
                serving = asyncio.ensure_future(
                    fe.serve(wl, batch_size=50))
                await fe.refresh(EdgeUpdate(u, v, 0))
                answers = await serving
            return answers

        answers = asyncio.run(main())
        # Every answer comes from epoch 0's or epoch 1's table -- both
        # internally consistent; distance answers must match one of the
        # two truths.
        old = truth(graph)
        new = {q.u: dijkstra(o.graph, q.u)[0] for q in wl}
        for q, a in zip(wl, answers):
            d = a if q.kind == "distance" else (
                INF if a is None else a.distance)
            assert d in (old[q.u][q.v], new[q.u][q.v])
        assert o.oracle_check() == []

    def test_frontend_validation(self, oracle):
        with pytest.raises(ValueError):
            AsyncFrontend(oracle, max_workers=0)
        with pytest.raises(ValueError):
            AsyncFrontend(oracle, max_batch=0).close()

    def test_closed_frontend_rejects(self, oracle):
        async def main():
            fe = AsyncFrontend(oracle)
            await fe.aclose()
            with pytest.raises(RuntimeError):
                await fe.distance(0, 1)

        asyncio.run(main())
