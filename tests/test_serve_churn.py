"""Cache-under-churn property tests for the serving layer.

The serving-layer guarantee under churn: after **any** stream of
``EdgeUpdate`` events -- with queries interleaved so the LRU route
cache is hot across every refresh epoch -- every distance the oracle
serves equals the Dijkstra ground truth on the current graph.  Stale
cache entries surviving a refresh would break exactly this, so the
assertions go through the *cached* query path (``distance()`` and the
batched ``query_batch``), never the raw tables.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import dijkstra, random_graph
from repro.recovery import EdgeUpdate
from repro.serve import DistanceOracle, Query

INF = float("inf")


@st.composite
def churn_scenarios(draw):
    """(graph, update_batches) where each batch is a list of EdgeUpdate
    on *existing* edges: weight bumps, drops to zero, and deletions
    (weight=None)."""
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    n = draw(st.integers(min_value=3, max_value=8))
    g = random_graph(n, p=0.5, w_max=6, zero_fraction=0.25, seed=seed)
    edges = sorted(g.edges())
    if not edges:
        g = random_graph(n, p=1.0, w_max=6, seed=seed)
        edges = sorted(g.edges())
    num_batches = draw(st.integers(min_value=1, max_value=3))
    rng = random.Random(seed ^ 0xC4A11)
    batches = []
    for _ in range(num_batches):
        size = draw(st.integers(min_value=1, max_value=3))
        batch = []
        for _ in range(size):
            u, v, w = rng.choice(edges)
            kind = draw(st.sampled_from(["bump", "zero", "delete"]))
            if kind == "bump":
                batch.append(EdgeUpdate(u, v, w + rng.randint(1, 5)))
            elif kind == "zero":
                batch.append(EdgeUpdate(u, v, 0))
            else:
                batch.append(EdgeUpdate(u, v, None))
        batches.append(batch)
    return g, batches, seed


def assert_all_served_match_dijkstra(oracle: DistanceOracle) -> None:
    """Every (source, target) distance through the cached path equals
    ground truth on the oracle's *current* graph."""
    g = oracle.graph
    for u in oracle.sources:
        want = dijkstra(g, u)[0]
        for v in range(g.n):
            got = oracle.distance(u, v)
            assert got == want[v], (
                f"stale answer {u}->{v}: served {got}, true {want[v]} "
                f"(epoch {oracle.epoch})")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn_scenarios())
def test_served_distances_match_dijkstra_after_any_update_stream(scenario):
    g, batches, seed = scenario
    oracle = DistanceOracle(g, num_shards=2, method="bellman-ford",
                            cache_size=1024)
    rng = random.Random(seed ^ 0xF00D)

    def warm_cache():
        # Populate the cache with a spread of pairs so every refresh
        # has live entries to keep or invalidate.
        qs = [Query(rng.randrange(g.n), rng.randrange(g.n),
                    rng.choice(["distance", "path"]))
              for _ in range(2 * g.n)]
        oracle.query_batch(qs)

    warm_cache()
    assert_all_served_match_dijkstra(oracle)
    for batch in batches:
        oracle.refresh(*batch)
        # The whole point: answers *after* the refresh go through the
        # same cache the pre-refresh queries populated.
        assert_all_served_match_dijkstra(oracle)
        assert oracle.validate_shards() == []
        warm_cache()
    # Epochs advanced once per refresh; history is complete.
    assert oracle.epoch == len(batches)
    assert len(oracle.refreshes) == len(batches)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(churn_scenarios())
def test_paths_stay_genuine_after_churn(scenario):
    """Served paths (not just distances) remain walkable on the
    current graph after every refresh."""
    g, batches, _ = scenario
    oracle = DistanceOracle(g, num_shards=1, method="bellman-ford",
                            cache_size=256)
    for batch in batches:
        oracle.refresh(*batch)
    cur = oracle.graph
    for u in oracle.sources:
        want = dijkstra(cur, u)[0]
        for v in range(cur.n):
            r = oracle.path(u, v)
            if want[v] == INF:
                assert r is None
                continue
            assert r.distance == want[v]
            total = 0
            for a, b in zip(r.path, r.path[1:]):
                w = cur.weight(a, b)
                assert w is not None, f"path uses dead edge {a}->{b}"
                total += w
            assert total == want[v]
