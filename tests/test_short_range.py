"""Tests for Algorithm 2 -- short-range and short-range-extension."""

import math
import random

import pytest

from repro.core import (
    k_source_short_range_schedule,
    run_short_range,
    run_short_range_extension,
)
from repro.graphs import (
    WeightedDigraph,
    dijkstra,
    dijkstra_min_hops,
    random_graph,
    zero_cluster_graph,
)
from repro.graphs.validation import assert_weak_h_hop_contract

INF = float("inf")


class TestShortRangeContract:
    @pytest.mark.parametrize("seed", range(20))
    def test_weak_contract(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 16)
        g = random_graph(n, p=0.3, w_max=rng.choice([0, 1, 6, 40]),
                         zero_fraction=0.3, seed=seed)
        h = rng.randint(1, n)
        s = rng.randrange(n)
        res = run_short_range(g, s, h)
        assert_weak_h_hop_contract(g, {s: res.dist}, {s: res.hops}, h,
                                   context="short-range")

    def test_full_range_is_exact_sssp(self):
        g = random_graph(12, p=0.3, w_max=6, zero_fraction=0.4, seed=7)
        res = run_short_range(g, 0, g.n - 1)
        assert res.dist == dijkstra(g, 0)[0]

    def test_parent_pointers(self):
        g = random_graph(10, p=0.35, w_max=5, zero_fraction=0.3, seed=4)
        res = run_short_range(g, 0, g.n - 1)
        for v in range(g.n):
            if v == 0 or res.dist[v] == INF:
                continue
            p = res.parent[v]
            assert g.weight(p, v) is not None
            assert res.dist[p] + g.weight(p, v) == res.dist[v]


class TestLemmaII15Bounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_dilation(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 18)
        g = random_graph(n, p=0.25, w_max=4, zero_fraction=0.4, seed=seed)
        h = rng.randint(1, n)
        res = run_short_range(g, seed % n, h)
        assert res.metrics.rounds <= res.dilation_bound

    @pytest.mark.parametrize("seed", range(10))
    def test_congestion_sqrt_h(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 18)
        g = random_graph(n, p=0.25, w_max=4, zero_fraction=0.4, seed=seed)
        h = rng.randint(1, n)
        res = run_short_range(g, seed % n, h)
        assert res.max_node_sends <= math.sqrt(h) + 1

    def test_each_node_one_message_per_round(self):
        g = random_graph(10, p=0.3, w_max=4, zero_fraction=0.4, seed=2)
        res = run_short_range(g, 0, 5)
        assert res.metrics.max_channel_congestion <= res.max_node_sends


class TestExtension:
    def test_extension_stitches_ranges(self):
        """Exact distances within h hops of a known frontier: running
        short-range for h, feeding the results in as 'known', and
        extending must reproduce Dijkstra wherever a shortest path
        decomposes as (known prefix) + (<= h more hops)."""
        g = zero_cluster_graph(4, 4, seed=3)
        h = 4
        d_true, l_true, _ = dijkstra_min_hops(g, 0)
        known = {v: int(d_true[v]) for v in range(g.n)
                 if l_true[v] <= h and d_true[v] != INF}
        res = run_short_range_extension(g, 0, h, known)
        for v in range(g.n):
            # does a min-hop shortest path to v decompose through a known
            # node with at most h residual hops?
            if l_true[v] != INF and l_true[v] <= 2 * h:
                assert res.dist[v] == d_true[v], v

    def test_extension_with_empty_known_equals_short_range(self):
        g = random_graph(8, p=0.35, w_max=4, zero_fraction=0.3, seed=5)
        a = run_short_range(g, 0, 3)
        b = run_short_range_extension(g, 0, 3, {})
        assert a.dist == b.dist

    def test_known_node_keeps_distance(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        res = run_short_range_extension(g, 0, 1, {1: 2})
        assert res.dist[1] == 2
        assert res.dist[2] == 5


class TestKSourceSchedule:
    def test_per_instance_properties(self):
        g = random_graph(10, p=0.3, w_max=4, zero_fraction=0.3, seed=1)
        results, summary = k_source_short_range_schedule(g, [0, 3, 6], 4)
        assert set(results) == {0, 3, 6}
        for s, res in results.items():
            assert res.metrics.rounds <= res.dilation_bound
            assert res.max_node_sends <= res.congestion_bound
        assert summary["composed_round_estimate"] >= summary["max_dilation"]


class TestValidation:
    def test_bad_inputs(self):
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_short_range(g, 0, 0)
        with pytest.raises(ValueError):
            run_short_range(g, 9, 2)

    def test_all_zero_graph(self):
        g = random_graph(8, p=0.4, w_max=0, seed=2)
        res = run_short_range(g, 0, g.n - 1)
        assert res.dist == dijkstra(g, 0)[0]


class TestKSourceJoint:
    """The paper's k-source variant with gamma = sqrt(hk/Delta)
    (end of Section II-C), run as one joint program per node."""

    @pytest.mark.parametrize("seed", range(12))
    def test_weak_contract(self, seed):
        from repro.core import run_k_source_short_range_joint
        rng = random.Random(seed)
        n = rng.randint(5, 14)
        g = random_graph(n, p=0.3, w_max=5, zero_fraction=0.4, seed=seed)
        h = rng.randint(1, n)
        srcs = rng.sample(range(n), rng.randint(2, n))
        res = run_k_source_short_range_joint(g, srcs, h)
        assert_weak_h_hop_contract(g, res.dist, res.hops, h,
                                   context="k-source joint")

    def test_congestion_bound(self):
        from repro.core import run_k_source_short_range_joint
        for seed in range(6):
            g = random_graph(12, p=0.3, w_max=4, zero_fraction=0.4, seed=seed)
            srcs = list(range(0, 12, 2))
            res = run_k_source_short_range_joint(g, srcs, 5)
            assert res.max_node_sends <= res.congestion_bound
            assert res.metrics.rounds <= res.dilation_bound

    def test_one_message_per_node_per_round(self):
        """Deferrals keep the node at one outgoing broadcast per round;
        the Network would raise CongestionError otherwise."""
        from repro.core import run_k_source_short_range_joint
        g = random_graph(10, p=0.4, w_max=3, zero_fraction=0.5, seed=3)
        res = run_k_source_short_range_joint(g, list(range(10)), 4)
        assert res.metrics.max_node_sends <= res.metrics.rounds

    def test_validation(self):
        from repro.core import run_k_source_short_range_joint
        g = random_graph(5, p=0.4, w_max=3, seed=1)
        with pytest.raises(ValueError):
            run_k_source_short_range_joint(g, [], 2)
        with pytest.raises(ValueError):
            run_k_source_short_range_joint(g, [0], 0)
