"""Fast-forward equivalence: the simulator's idle-round skipping must be
observationally identical to naive round-by-round execution.

The trick: wrap any program so that ``next_active_round`` always says
"next round" -- the network then executes every round naively.  Running
Algorithm 1 both ways must give identical outputs, round counts, message
counts, and congestion profiles.
"""

import random

import pytest

from repro.congest import Network
from repro.core.keys import gamma_for
from repro.core.pipelined import PipelinedSSPProgram, theorem11_round_bound
from repro.graphs import random_graph
from repro.graphs.reference import weak_delta_bound


class NaivePipelined(PipelinedSSPProgram):
    """Same algorithm, no fast-forward hints."""

    def next_active_round(self, ctx, r):
        real = super().next_active_round(ctx, r)
        if real is None:
            return None
        return r + 1  # conservative: wake up every round


@pytest.mark.parametrize("seed", range(6))
def test_fast_forward_equivalence(seed):
    rng = random.Random(seed)
    n = rng.randint(5, 12)
    g = random_graph(n, p=0.3, w_max=6, zero_fraction=0.3, seed=seed)
    h = rng.randint(1, n)
    srcs = tuple(rng.sample(range(n), rng.randint(1, n)))
    delta = weak_delta_bound(g, srcs, h)
    gamma = gamma_for(h, len(srcs), delta)
    bound = theorem11_round_bound(h, len(srcs), delta)

    def run(cls):
        net = Network(g, lambda v: cls(v, srcs, h, gamma, cutoff_round=bound))
        m = net.run(max_rounds=100000)
        return net.outputs(), m

    out_fast, m_fast = run(PipelinedSSPProgram)
    out_naive, m_naive = run(NaivePipelined)

    assert out_fast == out_naive
    assert m_fast.rounds == m_naive.rounds
    assert m_fast.messages == m_naive.messages
    assert m_fast.channel_messages == m_naive.channel_messages
    assert m_fast.active_rounds == m_naive.active_rounds
    # only the wall-clock accounting may differ
    assert m_fast.skipped_rounds >= 0


def test_naive_mode_still_quiesces():
    g = random_graph(6, p=0.4, w_max=3, zero_fraction=0.5, seed=9)
    srcs = (0, 2)
    delta = weak_delta_bound(g, srcs, 3)
    gamma = gamma_for(3, 2, delta)
    net = Network(g, lambda v: NaivePipelined(v, srcs, 3, gamma,
                                              cutoff_round=50))
    m = net.run(max_rounds=1000)
    assert m.rounds <= 50
