"""The parallel sweep executor is an invisible optimisation: fanned-out
sweeps must reproduce the sequential results bit for bit, and worker
failures must surface as debuggable errors, never as silent gaps."""

import pytest

from repro.analysis import sweep as sweep_mod
from repro.obs import BenchStore
from repro.perf import (
    EXPERIMENT_SWEEPS,
    SweepExecutor,
    SweepTask,
    SweepWorkerError,
    experiment_tasks,
    merge_reports,
    run_experiment,
)


def rows_as_tuples(report):
    return [(m.experiment, m.params, m.measured, m.bound, m.extra)
            for m in report.rows]


class TestDeterministicParallelism:
    def test_parallel_equals_sequential_rows(self):
        """E2 split one-task-per-seed across 4 workers: merged rows are
        exactly the sequential sweep's rows, in the sequential order."""
        seq = sweep_mod.sweep_theorem11_apsp(seeds=(0, 1, 2), sizes=(8, 12))
        (par,) = run_experiment("E2", jobs=4, seeds=(0, 1, 2), sizes=(8, 12))
        assert par.experiment == seq.experiment
        assert par.description == seq.description
        assert rows_as_tuples(par) == rows_as_tuples(seq)

    def test_parallel_bench_record_bit_identical(self, tmp_path):
        """The persisted BENCH_*.json bytes agree modulo the creation
        stamp (pinned by passing an explicit ``created``)."""
        store = BenchStore(tmp_path)
        seq = [sweep_mod.sweep_theorem11_apsp(seeds=(0, 1), sizes=(8,)),
               sweep_mod.sweep_table1_exact(seeds=(0,), sizes=(8,))]
        p_seq = store.save("seq", seq, created="pinned")

        tasks = [SweepTask("repro.analysis.sweep:sweep_theorem11_apsp",
                           {"seeds": (0, 1), "sizes": (8,)}),
                 SweepTask("repro.analysis.sweep:sweep_table1_exact",
                           {"seeds": (0,), "sizes": (8,)})]
        par = SweepExecutor(jobs=4).run(tasks)
        p_par = store.save("par", par, created="pinned")

        seq_bytes = p_seq.read_bytes().replace(b'"seq"', b'"NAME"')
        par_bytes = p_par.read_bytes().replace(b'"par"', b'"NAME"')
        assert par_bytes == seq_bytes

    def test_jobs_1_degenerate_runs_inline(self):
        """jobs=1 must not touch multiprocessing at all (it is the
        fallback for platforms without it)."""
        ex = SweepExecutor(jobs=1)
        (rep,) = ex.run([SweepTask(
            "repro.analysis.sweep:sweep_theorem11_apsp",
            {"seeds": (0,), "sizes": (8,)})])
        seq = sweep_mod.sweep_theorem11_apsp(seeds=(0,), sizes=(8,))
        assert rows_as_tuples(rep) == rows_as_tuples(seq)

    def test_fast_backend_tasks_match_reference(self):
        seq = sweep_mod.sweep_theorem11_apsp(seeds=(0, 1), sizes=(8, 12))
        (fast,) = SweepExecutor(jobs=2, backend="fast").run(
            experiment_tasks("E2", jobs=2, seeds=(0, 1), sizes=(8, 12)))
        assert rows_as_tuples(fast) == rows_as_tuples(seq)

    def test_multi_report_sweep_merges_in_order(self):
        """E5 returns two reports (dilation + congestion); per-seed tasks
        must merge back into two reports with sequential row order."""
        seq_d, seq_c = sweep_mod.sweep_short_range(seeds=(0, 1), sizes=(10,))
        par = run_experiment("E5", jobs=2, seeds=(0, 1), sizes=(10,))
        assert [r.experiment for r in par] == ["E5a", "E5b"]
        assert rows_as_tuples(par[0]) == rows_as_tuples(seq_d)
        assert rows_as_tuples(par[1]) == rows_as_tuples(seq_c)


class TestTaskBuilding:
    def test_splittable_experiment_splits_by_seed(self):
        tasks = experiment_tasks("E2", jobs=4, seeds=(0, 1, 2), sizes=(8,))
        assert [t.kwargs["seeds"] for t in tasks] == [(0,), (1,), (2,)]
        assert all(t.kwargs["sizes"] == (8,) for t in tasks)

    def test_non_splittable_experiment_stays_single_task(self):
        for exp in ("E6", "E10", "E15", "E19"):
            assert not EXPERIMENT_SWEEPS[exp].seed_splittable
            tasks = experiment_tasks(exp, jobs=4)
            assert len(tasks) == 1

    def test_default_seeds_read_from_signature(self):
        tasks = experiment_tasks("E18", jobs=4)
        assert [t.kwargs["seeds"] for t in tasks] == [(0,), (1,)]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="E99"):
            experiment_tasks("E99")

    def test_bad_func_ref(self):
        with pytest.raises(ValueError, match="module.path:function"):
            SweepTask("no_colon_here").resolve()

    def test_jobs_validated(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(jobs=0)


def _boom(**kwargs):  # must be importable by workers: module-level
    raise RuntimeError("kaboom-in-worker")


class TestFailureSurfacing:
    def test_worker_exception_carries_traceback(self):
        task = SweepTask("test_sweep_executor:_boom", {"x": 1})
        with pytest.raises(SweepWorkerError) as exc:
            SweepExecutor(jobs=2).run_tasks([task, task])
        msg = str(exc.value)
        assert "kaboom-in-worker" in msg   # the original error
        assert "RuntimeError" in msg       # worker-side traceback text
        assert "test_sweep_executor:_boom" in msg  # which task died

    def test_inline_exception_propagates(self):
        with pytest.raises(RuntimeError, match="kaboom"):
            SweepExecutor(jobs=1).run_tasks(
                [SweepTask("test_sweep_executor:_boom")])


class TestMergeReports:
    def test_groups_by_experiment_first_seen_order(self):
        from repro.analysis.records import ExperimentReport

        a1 = ExperimentReport("A", "a")
        a1.add({"i": 0}, measured=1.0)
        b = ExperimentReport("B", "b")
        b.add({"i": 0}, measured=2.0)
        a2 = ExperimentReport("A", "a")
        a2.add({"i": 1}, measured=3.0)
        merged = merge_reports([[a1, b], [a2]])
        assert [r.experiment for r in merged] == ["A", "B"]
        assert [m.params["i"] for m in merged[0].rows] == [0, 1]
        # merging copies rows; the input reports are untouched
        assert len(a1.rows) == 1

    def test_conflicting_descriptions_raise(self):
        """Same experiment id + different description = two unrelated
        sweeps (or two versions of one); merging them would file rows
        under the wrong header, so it must raise, naming both."""
        from repro.analysis.records import ExperimentReport

        v1 = ExperimentReport("A", "old wording")
        v1.add({"i": 0}, measured=1.0)
        v2 = ExperimentReport("A", "new wording")
        v2.add({"i": 1}, measured=2.0)
        with pytest.raises(ValueError) as exc:
            merge_reports([[v1], [v2]])
        msg = str(exc.value)
        assert "'old wording'" in msg and "'new wording'" in msg
        assert "'A'" in msg


class TestBackendValidation:
    def test_task_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            SweepTask("repro.analysis.sweep:sweep_theorem11_apsp",
                      backend="nope")

    def test_task_rejects_empty_backend(self):
        """The '' fall-through: ``t.backend or self.backend`` treats an
        empty string as "use the executor default", silently running on
        the wrong backend.  Reject it at construction instead, with the
        same error text the backend registry uses."""
        with pytest.raises(ValueError, match="unknown simulator backend ''"):
            SweepTask("repro.analysis.sweep:sweep_theorem11_apsp",
                      backend="")

    def test_executor_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            SweepExecutor(jobs=1, backend="")

    def test_none_backend_still_defaults(self):
        assert SweepTask("repro.analysis.sweep:sweep_theorem11_apsp").backend is None


def _sleep_report(delay=2.0):  # module-level: importable by workers
    import time as _time
    from repro.analysis.records import ExperimentReport

    _time.sleep(delay)
    rep = ExperimentReport("SLOW", "sleeper")
    rep.add({"delay": delay}, measured=delay)
    return rep


def _touch_marker(path=""):
    from repro.analysis.records import ExperimentReport

    import pathlib
    pathlib.Path(path).write_text("ran")
    rep = ExperimentReport("MARK", "marker")
    rep.add({"path": path}, measured=0.0)
    return rep


class TestCancelOnFailure:
    def test_pending_tasks_cancelled_after_failure(self, tmp_path):
        """A failing task must abort the whole batch: the failure
        surfaces while sleepers pin both workers, so the queued marker
        tasks behind them are cancelled rather than executed.  The pool
        pre-buffers up to ``max_workers + 1`` items to its call queue
        (CPython's EXTRA_QUEUED_CALLS) and those can no longer be
        cancelled, so a small fixed prefix of markers may still run --
        but never the backlog.  Without cancellation every marker runs
        (shutdown(wait=True) drains the whole queue)."""
        markers = [tmp_path / f"marker{i}.txt" for i in range(8)]
        tasks = [SweepTask("test_sweep_executor:_boom"),
                 SweepTask("test_sweep_executor:_sleep_report",
                           {"delay": 2.0}),
                 SweepTask("test_sweep_executor:_sleep_report",
                           {"delay": 2.1})]
        tasks += [SweepTask("test_sweep_executor:_touch_marker",
                            {"path": str(p)}) for p in markers]
        with pytest.raises(SweepWorkerError, match="kaboom"):
            SweepExecutor(jobs=2).run_tasks(tasks)
        # run_tasks only returns after its pool has shut down, so this
        # is not a race: a marker missing here was cancelled, not slow.
        ran = [p for p in markers if p.exists()]
        assert len(ran) <= 4, (  # jobs + prefetch(1) + slack(1)
            f"{len(ran)} of {len(markers)} pending tasks still ran "
            f"after the batch failed -- cancellation is not happening")
        assert not markers[-1].exists()
