"""Tests for the weight transforms behind the paper's reductions."""

import random

import pytest

from repro.graphs import GraphError, WeightedDigraph, dijkstra, random_graph
from repro.graphs.transforms import (
    expansion_blowup,
    reduced_graph,
    rounded_graph,
    scaled_graph,
    unit_weights,
    weight_expanded_graph,
    zero_subgraph,
)

INF = float("inf")


class TestScaledGraph:
    def test_weights(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 0), (1, 2, 4)])
        gp = scaled_graph(g)
        assert gp.weight(0, 1) == 1
        assert gp.weight(1, 2) == 4 * 9

    def test_distance_sandwich(self):
        """Section IV: n^2 delta <= delta' <= n^2 delta + (n-1) for pairs
        without an all-zero path."""
        for seed in range(6):
            g = random_graph(8, p=0.35, w_max=5, zero_fraction=0.4, seed=seed)
            gp = scaled_graph(g)
            n2 = g.n * g.n
            for s in range(g.n):
                d, _ = dijkstra(g, s)
                dp, _ = dijkstra(gp, s)
                for v in range(g.n):
                    if d[v] == INF:
                        assert dp[v] == INF
                    else:
                        assert n2 * d[v] <= dp[v] <= n2 * d[v] + g.n - 1


class TestRoundedGraph:
    def test_ceil_semantics(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 7)])
        assert rounded_graph(g, 2, 1).weight(0, 1) == 4   # ceil(7/2)
        assert rounded_graph(g, 3, 2).weight(0, 1) == 5   # ceil(7*2/3)
        assert rounded_graph(g, 1, 1).weight(0, 1) == 7

    def test_rounding_never_decreases_distances(self):
        g = random_graph(8, p=0.35, w_max=9, zero_fraction=0.0, seed=1)
        gr = rounded_graph(g, 3, 1)
        for s in range(g.n):
            d, _ = dijkstra(g, s)
            dr, _ = dijkstra(gr, s)
            for v in range(g.n):
                if d[v] != INF:
                    assert dr[v] * 3 >= d[v]

    def test_invalid_rho(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError):
            rounded_graph(g, 0, 1)


class TestReducedGraph:
    def test_non_negative_with_coarser_scale_potentials(self):
        """Gabow validity: potentials from the next-coarser scale
        (weights ``w >> (shift+1)``) make every reduced weight
        non-negative."""
        for seed in range(6):
            g = random_graph(8, p=0.4, w_max=15, zero_fraction=0.2, seed=seed)
            shift = 1
            g_coarse = WeightedDigraph(g.n)
            for u, v, w in g.edges():
                g_coarse.add_edge(u, v, w >> (shift + 1))
            for x in range(g.n):
                pot, _ = dijkstra(g_coarse, x)
                red = reduced_graph(g, shift, pot)
                if red is not None:
                    for _u, _v, w in red.edges():
                        assert w >= 0

    def test_reduced_distances_telescope(self):
        """delta_red(x, v) = delta_{i+1}(x, v) - 2 delta_i(x, v)."""
        g = random_graph(8, p=0.4, w_max=15, zero_fraction=0.2, seed=9)
        shift = 1
        g_fine = WeightedDigraph(g.n)
        g_coarse = WeightedDigraph(g.n)
        for u, v, w in g.edges():
            g_fine.add_edge(u, v, w >> shift)
            g_coarse.add_edge(u, v, w >> (shift + 1))
        for x in range(g.n):
            pot, _ = dijkstra(g_coarse, x)
            d_fine, _ = dijkstra(g_fine, x)
            red = reduced_graph(g, shift, pot)
            if red is None:
                continue
            d_red, _ = dijkstra(red, x)
            for v in range(g.n):
                if d_fine[v] != INF and pot[v] != INF:
                    assert d_red[v] == d_fine[v] - 2 * pot[v]

    def test_invalid_potentials_detected(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 1)])
        with pytest.raises(ValueError, match="negative"):
            reduced_graph(g, 0, [0, 5])  # p(v) too large

    def test_unreachable_endpoints_dropped(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        red = reduced_graph(g, 0, [0, 1, INF])
        assert red.weight(0, 1) == 2 + 0 - 2
        assert red.weight(1, 2) is None

    def test_all_unreachable_returns_none(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 1)])
        assert reduced_graph(g, 0, [INF, INF]) is None


class TestUnitAndZero:
    def test_unit_weights(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 9)])
        assert unit_weights(g).weight(0, 1) == 1

    def test_zero_subgraph(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 0), (1, 2, 4)])
        z = zero_subgraph(g)
        assert z.weight(0, 1) == 0
        assert z.weight(1, 2) is None
        assert z.n == 3


class TestWeightExpansion:
    def test_expansion_preserves_distances(self):
        g = random_graph(6, p=0.4, w_max=4, zero_fraction=0.0, seed=3)
        ge, mapping = weight_expanded_graph(g)
        for s in range(g.n):
            d, _ = dijkstra(g, s)
            de, _ = dijkstra(ge, mapping[s])
            for v in range(g.n):
                assert de[mapping[v]] == d[v]

    def test_zero_weight_failure_mode(self):
        """The paper's Section I observation, as an exception."""
        g = WeightedDigraph.from_edges(2, [(0, 1, 0)])
        with pytest.raises(GraphError, match="zero"):
            weight_expanded_graph(g)

    def test_blowup_is_theta_mW(self):
        g = WeightedDigraph.from_edges(2, [(0, 1, 100), (1, 0, 100)])
        assert expansion_blowup(g) == 2 + 99 + 99
        ge, _ = weight_expanded_graph(g)
        assert ge.n == expansion_blowup(g)
