"""Tests that the validation helpers themselves catch what they claim to."""

import pytest

from repro.graphs import (
    ValidationError,
    WeightedDigraph,
    assert_apsp_correct,
    assert_distances_equal,
    assert_h_hop_correct,
    assert_hop_monotone,
    assert_tree_parents,
    assert_triangle_inequality,
    dijkstra,
    random_graph,
)
from repro.graphs.validation import assert_weak_h_hop_contract

INF = float("inf")


@pytest.fixture
def g():
    return random_graph(8, p=0.4, w_max=5, zero_fraction=0.3, seed=1)


class TestDistancesEqual:
    def test_passes_on_equal(self, g):
        d = {0: dijkstra(g, 0)[0]}
        assert_distances_equal(d, d)

    def test_detects_value_mismatch(self, g):
        d = dijkstra(g, 0)[0]
        bad = list(d)
        bad[3] = bad[3] + 1 if bad[3] != INF else 0
        with pytest.raises(ValidationError, match="dist"):
            assert_distances_equal({0: bad}, {0: d})

    def test_detects_source_set_mismatch(self, g):
        d = dijkstra(g, 0)[0]
        with pytest.raises(ValidationError, match="source sets"):
            assert_distances_equal({0: d}, {0: d, 1: d})

    def test_detects_length_mismatch(self, g):
        d = dijkstra(g, 0)[0]
        with pytest.raises(ValidationError, match="length"):
            assert_distances_equal({0: d[:-1]}, {0: d})


class TestOracleChecks:
    def test_apsp_correct_passes(self, g):
        assert_apsp_correct(g, {s: dijkstra(g, s)[0] for s in range(3)})

    def test_h_hop_correct_passes(self, g):
        from repro.graphs import hop_limited_sssp
        assert_h_hop_correct(g, {0: hop_limited_sssp(g, 0, 3)[0]}, 3)

    def test_triangle_inequality_detects_violation(self, g):
        dist = [dijkstra(g, s)[0] for s in range(g.n)]
        assert_triangle_inequality(g, dist)  # sanity: true distances pass
        bad = [list(r) for r in dist]
        u, v, w = next(iter(g.edges()))
        bad[0][v] = bad[0][u] + w + 1
        with pytest.raises(ValidationError, match="triangle"):
            assert_triangle_inequality(g, bad)

    def test_hop_monotone_passes(self, g):
        assert_hop_monotone(g, 0, g.n)


class TestTreeParents:
    def test_valid_tree_passes(self, g):
        dist, parent = dijkstra(g, 0)
        assert_tree_parents(g, 0, parent, dist)

    def test_detects_non_edge_parent(self, g):
        dist, parent = dijkstra(g, 0)
        bad = list(parent)
        for v in range(g.n):
            if v != 0 and bad[v] is not None:
                # point at some non-in-neighbour
                for cand in range(g.n):
                    if cand != v and g.weight(cand, v) is None:
                        bad[v] = cand
                        break
                else:
                    continue
                with pytest.raises(ValidationError):
                    assert_tree_parents(g, 0, bad, dist)
                return
        pytest.skip("graph too dense to fabricate a non-edge")

    def test_detects_hop_bound_violation(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 1), (1, 2, 1)])
        dist, parent = dijkstra(g, 0)
        with pytest.raises(ValidationError, match="hops"):
            assert_tree_parents(g, 0, parent, dist, hop_bound=1)


class TestWeakContract:
    def test_catches_wrong_guaranteed_pair(self, g):
        from repro.graphs.reference import weak_h_hop_sssp
        d, l = weak_h_hop_sssp(g, 0, g.n)
        bad = list(d)
        v = next(v for v in range(g.n) if v != 0 and d[v] not in (INF,))
        bad[v] += 1
        with pytest.raises(ValidationError, match="guaranteed"):
            assert_weak_h_hop_contract(g, {0: bad}, {0: l}, g.n)

    def test_catches_impossible_optional_value(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 0), (1, 2, 0), (0, 2, 9)])
        # minhop(0->2) = 2 > h=1; claiming d=1 with 1 hop is not a real path
        with pytest.raises(ValidationError, match="not a real path"):
            assert_weak_h_hop_contract(
                g, {0: [0, 0, 1]}, {0: [0, 1, 1]}, 1)

    def test_catches_hop_overflow(self):
        g = WeightedDigraph.from_edges(3, [(0, 1, 0), (1, 2, 0), (0, 2, 9)])
        with pytest.raises(ValidationError, match="exceeds"):
            assert_weak_h_hop_contract(
                g, {0: [0, 0, 0]}, {0: [0, 1, 2]}, 1)
